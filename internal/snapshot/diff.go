package snapshot

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Diff compares two snapshots field by field and returns one line per
// difference, empty when they are equivalent. It is the engine behind
// `digs-snap diff` and the bisect workflow: two runs that should have been
// identical diverge somewhere, and the first differing field names the
// subsystem to look at.
func Diff(a, b *Snapshot) []string {
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }

	if a.Meta.Protocol != b.Meta.Protocol {
		add("meta.protocol: %q vs %q", a.Meta.Protocol, b.Meta.Protocol)
	}
	if a.Meta.Topology != b.Meta.Topology {
		add("meta.topology: %q vs %q", a.Meta.Topology, b.Meta.Topology)
	}
	if a.Meta.Seed != b.Meta.Seed {
		add("meta.seed: %d vs %d", a.Meta.Seed, b.Meta.Seed)
	}
	if a.Meta.Slot != b.Meta.Slot {
		add("meta.slot: %d vs %d", a.Meta.Slot, b.Meta.Slot)
	}
	if a.Meta.ConfigHash != b.Meta.ConfigHash {
		add("meta.config_hash: %016x vs %016x", a.Meta.ConfigHash, b.Meta.ConfigHash)
	}

	diffStruct(add, "net", a.Net, b.Net)

	n := len(a.MACs)
	if len(b.MACs) != n {
		add("mac: %d vs %d nodes", len(a.MACs), len(b.MACs))
	} else {
		for i := 1; i < n; i++ {
			diffStruct(add, fmt.Sprintf("mac[%d]", i), a.MACs[i], b.MACs[i])
		}
	}
	if len(a.DiGS) != len(b.DiGS) {
		add("digs: %d vs %d stacks", len(a.DiGS), len(b.DiGS))
	} else {
		for i := 1; i < len(a.DiGS); i++ {
			diffStruct(add, fmt.Sprintf("digs[%d]", i), a.DiGS[i], b.DiGS[i])
		}
	}
	if len(a.Orchestra) != len(b.Orchestra) {
		add("orch: %d vs %d stacks", len(a.Orchestra), len(b.Orchestra))
	} else {
		for i := 1; i < len(a.Orchestra); i++ {
			diffStruct(add, fmt.Sprintf("orch[%d]", i), a.Orchestra[i], b.Orchestra[i])
		}
	}
	diffStruct(add, "metrics", a.Metrics, b.Metrics)
	return out
}

// diffStruct reports, per top-level field of a (possibly pointed-to)
// struct, whether the two values differ. Reflection keeps it honest as
// state structs grow fields: a new field can never silently escape diff
// coverage.
func diffStruct(add func(string, ...any), prefix string, a, b any) {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	nilA := !va.IsValid() || (va.Kind() == reflect.Pointer && va.IsNil())
	nilB := !vb.IsValid() || (vb.Kind() == reflect.Pointer && vb.IsNil())
	if nilA || nilB {
		if nilA != nilB {
			add("%s: present only on one side", prefix)
		}
		return
	}
	for va.Kind() == reflect.Pointer {
		va, vb = va.Elem(), vb.Elem()
	}
	if va.Kind() != reflect.Struct || va.Type() != vb.Type() {
		if !reflect.DeepEqual(a, b) {
			add("%s: differs", prefix)
		}
		return
	}
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		fa, fb := va.Field(i).Interface(), vb.Field(i).Interface()
		if !reflect.DeepEqual(fa, fb) {
			add("%s.%s: %s vs %s", prefix, t.Field(i).Name, compact(fa), compact(fb))
		}
	}
}

// compact renders a field value small enough for one diff line.
func compact(v any) string {
	s := fmt.Sprintf("%+v", v)
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}

// Summary renders a human-readable overview of a snapshot for
// `digs-snap info`.
func Summary(s *Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol:    %s\n", s.Meta.Protocol)
	fmt.Fprintf(&b, "topology:    %s (%d nodes, %d APs)\n", s.Meta.Topology, s.Meta.Nodes, s.Meta.NumAPs)
	fmt.Fprintf(&b, "seed:        %d\n", s.Meta.Seed)
	fmt.Fprintf(&b, "slot:        %d\n", s.Meta.Slot)
	fmt.Fprintf(&b, "config hash: %016x\n", s.Meta.ConfigHash)
	if s.Meta.Label != "" {
		fmt.Fprintf(&b, "label:       %s\n", s.Meta.Label)
	}
	if len(s.Meta.Extra) > 0 {
		keys := make([]string, 0, len(s.Meta.Extra))
		for k := range s.Meta.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "extra:       %s=%s\n", k, s.Meta.Extra[k])
		}
	}
	synced, queued := 0, 0
	for _, m := range s.MACs {
		if m == nil {
			continue
		}
		if m.Synced {
			synced++
		}
		queued += len(m.Queue) + len(m.DownQueue)
	}
	fmt.Fprintf(&b, "mac:         %d/%d synced, %d packets queued\n", synced, s.Meta.Nodes, queued)
	joined := 0
	for _, st := range s.DiGS {
		if st != nil && st.Router.HasParentedAt {
			joined++
		}
	}
	for _, st := range s.Orchestra {
		if st != nil && st.Router.HasParentedAt {
			joined++
		}
	}
	if s.Meta.Protocol != ProtocolWHART {
		fmt.Fprintf(&b, "routing:     %d/%d ever parented\n", joined, s.Meta.Nodes-s.Meta.NumAPs)
	}
	if s.Metrics != nil {
		fmt.Fprintf(&b, "metrics:     %d sent, %d delivered in window\n", len(s.Metrics.Sent), len(s.Metrics.Delivered))
	}
	if len(s.SectionSizes) > 0 {
		tags := make([]string, 0, len(s.SectionSizes))
		for t := range s.SectionSizes {
			tags = append(tags, t)
		}
		sort.Strings(tags)
		parts := make([]string, len(tags))
		for i, t := range tags {
			parts[i] = fmt.Sprintf("%s=%dB", t, s.SectionSizes[t])
		}
		fmt.Fprintf(&b, "sections:    %s\n", strings.Join(parts, " "))
	}
	return b.String()
}
