package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/link"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/orchestra"
	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/store"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// Wire layout: an 8-byte magic, a uvarint format version, a sequence of
// tagged length-prefixed sections terminated by an empty tag, and a CRC-32
// (IEEE) of everything preceding it. Sections are self-describing enough
// for tooling to size them without decoding; the decoder rejects unknown
// versions, unknown tags, duplicate or missing sections, trailing garbage
// and any checksum mismatch — and never panics on malformed input.
const (
	magic = "DIGSSNAP"
	// Version is the current wire format version. Bump it on any layout
	// change; decoders reject versions they do not know. Version 2 added
	// the scale engine's network-state fields (sparse fade pairs and nap
	// vectors); version 3 added the controller-layer stack sections (sdn,
	// adpt). Older snapshots still decode (they predate those features,
	// so the added fields and sections are simply absent).
	Version = 3
)

// Section tags.
const (
	secMeta     = "meta"
	secNet      = "net"
	secMAC      = "mac"
	secDiGS     = "digs"
	secOrch     = "orch"
	secSDN      = "sdn"
	secAdaptive = "adpt"
	secMetrics  = "metrics"
)

// Encode serialises a snapshot to its wire form.
func Encode(s *Snapshot) ([]byte, error) {
	switch s.Meta.Protocol {
	case ProtocolDiGS, ProtocolOrchestra, ProtocolWHART, ProtocolSDN, ProtocolAdaptive:
	default:
		return nil, fmt.Errorf("snapshot: encode unknown protocol %q", s.Meta.Protocol)
	}
	if s.Net == nil {
		return nil, fmt.Errorf("snapshot: encode without network state")
	}

	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, magic...)
	w.uvarint(Version)

	section := func(tag string, body func(*writer)) {
		var sw writer
		body(&sw)
		w.str(tag)
		w.bytes(sw.buf)
	}

	section(secMeta, func(sw *writer) { encodeMeta(sw, &s.Meta) })
	section(secNet, func(sw *writer) { encodeNet(sw, s.Net) })
	section(secMAC, func(sw *writer) { encodeMACs(sw, s.MACs) })
	switch s.Meta.Protocol {
	case ProtocolDiGS:
		section(secDiGS, func(sw *writer) { encodeDiGSStacks(sw, s.DiGS) })
	case ProtocolOrchestra:
		section(secOrch, func(sw *writer) { encodeOrchStacks(sw, s.Orchestra) })
	case ProtocolSDN:
		section(secSDN, func(sw *writer) { encodeSDNStacks(sw, s.SDN) })
	case ProtocolAdaptive:
		section(secAdaptive, func(sw *writer) { encodeAdaptiveStacks(sw, s.Adaptive) })
	}
	if s.Metrics != nil {
		section(secMetrics, func(sw *writer) { encodeCollector(sw, s.Metrics) })
	}
	w.str("") // terminator
	w.buf = binary.BigEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf))
	return w.buf, nil
}

// Decode parses a wire-form snapshot. It is safe on arbitrary input:
// corrupt, truncated or version-skewed data returns an error, never a
// panic.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(magic)+1+4 {
		return nil, fmt.Errorf("snapshot: %d bytes is too short", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic")
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("snapshot: checksum mismatch (stored %08x, computed %08x)", sum, got)
	}

	r := &reader{buf: body, off: len(magic)}
	ver := r.uvarint()
	if r.err == nil && (ver < 1 || ver > Version) {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads <= %d", ver, Version)
	}

	s := &Snapshot{SectionSizes: make(map[string]int)}
	seen := make(map[string]bool)
	for r.err == nil {
		tag := r.str()
		if r.err != nil || tag == "" {
			break
		}
		payload := r.bytes()
		if r.err != nil {
			break
		}
		if seen[tag] {
			return nil, fmt.Errorf("snapshot: duplicate section %q", tag)
		}
		seen[tag] = true
		s.SectionSizes[tag] = len(payload)
		sr := &reader{buf: payload}
		switch tag {
		case secMeta:
			decodeMeta(sr, &s.Meta)
		case secNet:
			s.Net = decodeNet(sr, ver)
		case secMAC:
			s.MACs = decodeMACs(sr)
		case secDiGS:
			s.DiGS = decodeDiGSStacks(sr)
		case secOrch:
			s.Orchestra = decodeOrchStacks(sr)
		case secSDN:
			s.SDN = decodeSDNStacks(sr)
		case secAdaptive:
			s.Adaptive = decodeAdaptiveStacks(sr)
		case secMetrics:
			s.Metrics = decodeCollector(sr)
		default:
			return nil, fmt.Errorf("snapshot: unknown section %q", tag)
		}
		if sr.err != nil {
			return nil, fmt.Errorf("snapshot: section %q: %w", tag, sr.err)
		}
		if sr.off != len(sr.buf) {
			return nil, fmt.Errorf("snapshot: section %q has %d trailing bytes", tag, len(sr.buf)-sr.off)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after terminator", len(r.buf)-r.off)
	}
	return s, validate(s, seen)
}

// validate enforces cross-section consistency after a structurally sound
// decode.
func validate(s *Snapshot, seen map[string]bool) error {
	for _, tag := range []string{secMeta, secNet, secMAC} {
		if !seen[tag] {
			return fmt.Errorf("snapshot: missing section %q", tag)
		}
	}
	if s.Meta.Nodes < 1 || s.Meta.Nodes > 1<<20 {
		return fmt.Errorf("snapshot: implausible node count %d", s.Meta.Nodes)
	}
	if len(s.MACs) != s.Meta.Nodes+1 {
		return fmt.Errorf("snapshot: %d MAC entries for %d nodes", len(s.MACs), s.Meta.Nodes)
	}
	switch s.Meta.Protocol {
	case ProtocolDiGS:
		if !seen[secDiGS] || len(s.DiGS) != s.Meta.Nodes+1 {
			return fmt.Errorf("snapshot: digs snapshot without matching stack section")
		}
	case ProtocolOrchestra:
		if !seen[secOrch] || len(s.Orchestra) != s.Meta.Nodes+1 {
			return fmt.Errorf("snapshot: orchestra snapshot without matching stack section")
		}
	case ProtocolSDN:
		if !seen[secSDN] || len(s.SDN) != s.Meta.Nodes+1 {
			return fmt.Errorf("snapshot: sdn snapshot without matching stack section")
		}
	case ProtocolAdaptive:
		if !seen[secAdaptive] || len(s.Adaptive) != s.Meta.Nodes+1 {
			return fmt.Errorf("snapshot: adaptive snapshot without matching stack section")
		}
	case ProtocolWHART:
		if seen[secDiGS] || seen[secOrch] || seen[secSDN] || seen[secAdaptive] {
			return fmt.Errorf("snapshot: whart snapshot with protocol stack section")
		}
	default:
		return fmt.Errorf("snapshot: unknown protocol %q", s.Meta.Protocol)
	}
	return nil
}

// WriteFile atomically writes the snapshot next to its final path (see
// store.WriteFileAtomic: concurrent writers on one path cannot interleave).
func WriteFile(path string, s *Snapshot) error {
	b, err := Encode(s)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(path, b)
}

// ReadFile loads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// --- meta ---

func encodeMeta(w *writer, m *Meta) {
	w.str(m.Protocol)
	w.str(m.Topology)
	w.intval(m.Nodes)
	w.intval(m.NumAPs)
	w.i64(m.Seed)
	w.i64(m.Slot)
	w.u64(m.ConfigHash)
	w.str(m.Label)
	keys := make([]string, 0, len(m.Extra))
	for k := range m.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(m.Extra[k])
	}
}

func decodeMeta(r *reader, m *Meta) {
	m.Protocol = r.str()
	m.Topology = r.str()
	m.Nodes = r.intval()
	m.NumAPs = r.intval()
	m.Seed = r.i64()
	m.Slot = r.i64()
	m.ConfigHash = r.u64()
	m.Label = r.str()
	if n := r.count(2); n > 0 {
		m.Extra = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := r.str()
			m.Extra[k] = r.str()
		}
	}
}

// --- sim network ---

func encodeNet(w *writer, st *sim.NetworkState) {
	w.i64(st.Seed)
	w.i64(st.ASN)
	w.boolean(st.Started)
	w.u64(st.EventSeq)
	w.u64(st.RNGDraws)
	w.float(st.FastFadingSigmaDB)
	w.uvarint(uint64(len(st.Failed)))
	for _, f := range st.Failed {
		w.boolean(f)
	}
	w.boolean(st.Fade != nil)
	if st.Fade != nil {
		w.uvarint(uint64(len(st.Fade)))
		for _, f := range st.Fade {
			w.float(f)
		}
	}
	w.boolean(st.DriftProb != nil)
	if st.DriftProb != nil {
		w.uvarint(uint64(len(st.DriftProb)))
		for _, p := range st.DriftProb {
			w.float(p)
		}
		for _, s := range st.DriftSeed {
			w.u64(s)
		}
	}
	// Version 2: scale-engine state.
	w.boolean(st.FadeLinkIdx != nil)
	if st.FadeLinkIdx != nil {
		w.uvarint(uint64(len(st.FadeLinkIdx)))
		for _, i := range st.FadeLinkIdx {
			w.uvarint(uint64(uint32(i)))
		}
		for _, v := range st.FadeLinkVal {
			w.float(v)
		}
	}
	w.boolean(st.NapUntil != nil)
	if st.NapUntil != nil {
		w.uvarint(uint64(len(st.NapUntil)))
		for _, v := range st.NapUntil {
			w.i64(v)
		}
		for _, v := range st.NapStart {
			w.i64(v)
		}
	}
}

func decodeNet(r *reader, ver uint64) *sim.NetworkState {
	st := &sim.NetworkState{}
	st.Seed = r.i64()
	st.ASN = r.i64()
	st.Started = r.boolean()
	st.EventSeq = r.u64()
	st.RNGDraws = r.u64()
	st.FastFadingSigmaDB = r.float()
	if n := r.count(1); n > 0 {
		st.Failed = make([]bool, n)
		for i := range st.Failed {
			st.Failed[i] = r.boolean()
		}
	}
	if r.boolean() {
		n := r.count(8)
		st.Fade = make([]float64, n)
		for i := range st.Fade {
			st.Fade[i] = r.float()
		}
	}
	if r.boolean() {
		n := r.count(9)
		st.DriftProb = make([]float64, n)
		for i := range st.DriftProb {
			st.DriftProb[i] = r.float()
		}
		st.DriftSeed = make([]uint64, n)
		for i := range st.DriftSeed {
			st.DriftSeed[i] = r.u64()
		}
	}
	if ver >= 2 {
		if r.boolean() {
			n := r.count(9)
			st.FadeLinkIdx = make([]int32, n)
			for i := range st.FadeLinkIdx {
				st.FadeLinkIdx[i] = int32(uint32(r.uvarint()))
			}
			st.FadeLinkVal = make([]float64, n)
			for i := range st.FadeLinkVal {
				st.FadeLinkVal[i] = r.float()
			}
		}
		if r.boolean() {
			n := r.count(2)
			st.NapUntil = make([]int64, n)
			for i := range st.NapUntil {
				st.NapUntil[i] = r.i64()
			}
			st.NapStart = make([]int64, n)
			for i := range st.NapStart {
				st.NapStart[i] = r.i64()
			}
		}
	}
	return st
}

// --- mac nodes ---

func encodeFrame(w *writer, f *mac.FrameState) {
	w.u8(f.Kind)
	w.u64(uint64(f.Src))
	w.u64(uint64(f.Dst))
	w.u16(f.Seq)
	w.u64(uint64(f.Origin))
	w.u16(f.FlowID)
	w.i64(f.BornASN)
	w.uvarint(uint64(len(f.Route)))
	for _, hop := range f.Route {
		w.u64(uint64(hop))
	}
	w.bytes(f.Payload)
}

func decodeFrame(r *reader) mac.FrameState {
	var f mac.FrameState
	f.Kind = r.u8()
	f.Src = topology.NodeID(r.u64())
	f.Dst = topology.NodeID(r.u64())
	f.Seq = r.u16()
	f.Origin = topology.NodeID(r.u64())
	f.FlowID = r.u16()
	f.BornASN = r.i64()
	if n := r.count(1); n > 0 {
		f.Route = make([]topology.NodeID, n)
		for i := range f.Route {
			f.Route[i] = topology.NodeID(r.u64())
		}
	}
	f.Payload = r.bytes()
	return f
}

func encodePackets(w *writer, ps []mac.PacketState) {
	w.uvarint(uint64(len(ps)))
	for i := range ps {
		encodeFrame(w, &ps[i].Frame)
		w.intval(ps[i].TxCount)
		w.u64(uint64(ps[i].From))
		w.intval(ps[i].Blocked)
	}
}

func decodePackets(r *reader) []mac.PacketState {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]mac.PacketState, n)
	for i := range out {
		out[i].Frame = decodeFrame(r)
		out[i].TxCount = r.intval()
		out[i].From = topology.NodeID(r.u64())
		out[i].Blocked = r.intval()
	}
	return out
}

func encodeStats(w *writer, s *mac.Stats) {
	w.float(s.EnergyJoules)
	w.i64(int64(s.RadioOnTime))
	w.i64(s.Slots)
	w.i64(s.TxData)
	w.i64(s.TxControl)
	w.i64(s.RxFrames)
	w.i64(s.Generated)
	w.i64(s.Forwarded)
	w.i64(s.SinkDelivered)
	w.i64(s.CommandsDelivered)
	w.i64(s.BulletinsDelivered)
	w.i64(s.DroppedQueue)
	w.i64(s.DroppedRetries)
	w.i64(s.Duplicates)
	w.i64(s.Evicted)
	w.i64(s.WatchdogRequeues)
}

func decodeStats(r *reader) mac.Stats {
	var s mac.Stats
	s.EnergyJoules = r.float()
	s.RadioOnTime = time.Duration(r.i64())
	s.Slots = r.i64()
	s.TxData = r.i64()
	s.TxControl = r.i64()
	s.RxFrames = r.i64()
	s.Generated = r.i64()
	s.Forwarded = r.i64()
	s.SinkDelivered = r.i64()
	s.CommandsDelivered = r.i64()
	s.BulletinsDelivered = r.i64()
	s.DroppedQueue = r.i64()
	s.DroppedRetries = r.i64()
	s.Duplicates = r.i64()
	s.Evicted = r.i64()
	s.WatchdogRequeues = r.i64()
	return s
}

func encodeNode(w *writer, st *mac.NodeState) {
	w.boolean(st.Synced)
	w.i64(st.SyncedAt)
	w.i64(st.LastRx)
	encodePackets(w, st.Queue)
	encodePackets(w, st.DownQueue)
	w.uvarint(uint64(len(st.Seen)))
	for _, k := range st.Seen {
		w.u64(uint64(k.Origin))
		w.u16(k.Flow)
		w.u16(k.Seq)
	}
	w.u16(st.DownSeq)
	w.u16(st.BcastSeq)
	w.u64(st.CoinState)
	w.boolean(st.Bcast != nil)
	if st.Bcast != nil {
		encodeFrame(w, &st.Bcast.Frame)
		w.intval(st.Bcast.Remaining)
	}
	w.u64(uint64(st.WdDst))
	w.intval(st.WdFails)
	encodeStats(w, &st.Stats)
}

func decodeNode(r *reader) *mac.NodeState {
	st := &mac.NodeState{}
	st.Synced = r.boolean()
	st.SyncedAt = r.i64()
	st.LastRx = r.i64()
	st.Queue = decodePackets(r)
	st.DownQueue = decodePackets(r)
	if n := r.count(3); n > 0 {
		st.Seen = make([]mac.SeenKeyState, n)
		for i := range st.Seen {
			st.Seen[i].Origin = topology.NodeID(r.u64())
			st.Seen[i].Flow = r.u16()
			st.Seen[i].Seq = r.u16()
		}
	}
	st.DownSeq = r.u16()
	st.BcastSeq = r.u16()
	st.CoinState = r.u64()
	if r.boolean() {
		b := &mac.BulletinState{}
		b.Frame = decodeFrame(r)
		b.Remaining = r.intval()
		st.Bcast = b
	}
	st.WdDst = topology.NodeID(r.u64())
	st.WdFails = r.intval()
	st.Stats = decodeStats(r)
	return st
}

func encodeMACs(w *writer, nodes []*mac.NodeState) {
	w.uvarint(uint64(len(nodes)))
	for _, n := range nodes {
		w.boolean(n != nil)
		if n != nil {
			encodeNode(w, n)
		}
	}
}

func decodeMACs(r *reader) []*mac.NodeState {
	n := r.count(1)
	out := make([]*mac.NodeState, n)
	for i := range out {
		if r.boolean() {
			out[i] = decodeNode(r)
		}
		if r.err != nil {
			return nil
		}
	}
	return out
}

// --- shared routing pieces ---

func encodeLinks(w *writer, ls []link.LinkState) {
	w.uvarint(uint64(len(ls)))
	for _, l := range ls {
		w.u64(uint64(l.Node))
		w.float(l.ETX)
		w.float(l.RSSAvg)
		w.intval(l.ConsecFails)
		w.boolean(l.TxSeen)
		w.intval(l.ResurrectCount)
	}
}

func decodeLinks(r *reader) []link.LinkState {
	n := r.count(20)
	if n == 0 {
		return nil
	}
	out := make([]link.LinkState, n)
	for i := range out {
		out[i].Node = topology.NodeID(r.u64())
		out[i].ETX = r.float()
		out[i].RSSAvg = r.float()
		out[i].ConsecFails = r.intval()
		out[i].TxSeen = r.boolean()
		out[i].ResurrectCount = r.intval()
	}
	return out
}

func encodeTrickle(w *writer, t *trickle.State) {
	w.i64(t.Interval)
	w.i64(t.IntervalStart)
	w.i64(t.FireAt)
	w.intval(t.Counter)
	w.boolean(t.Started)
}

func decodeTrickle(r *reader) trickle.State {
	var t trickle.State
	t.Interval = r.i64()
	t.IntervalStart = r.i64()
	t.FireAt = r.i64()
	t.Counter = r.intval()
	t.Started = r.boolean()
	return t
}

// --- DiGS stacks ---

func encodeDiGSRouter(w *writer, st *core.RouterState) {
	w.u16(st.Rank)
	w.float(st.ETXw)
	w.u64(uint64(st.Best))
	w.u64(uint64(st.Second))
	w.float(st.ETXaBest)
	w.float(st.ETXaSecond)
	w.uvarint(uint64(len(st.Neighbors)))
	for _, e := range st.Neighbors {
		w.u64(uint64(e.Node))
		w.u16(e.Rank)
		w.float(e.ETXw)
		w.i64(e.LastHeard)
	}
	w.uvarint(uint64(len(st.Children)))
	for _, c := range st.Children {
		w.u64(uint64(c.Node))
		w.u8(c.Role)
		w.i64(c.LastHeard)
	}
	encodeLinks(w, st.Links)
	w.i64(st.FirstParentAt)
	w.boolean(st.HasParentedAt)
	w.i64(st.ParentChanges)
	w.i64(st.ChildVersion)
}

func decodeDiGSRouter(r *reader) core.RouterState {
	var st core.RouterState
	st.Rank = r.u16()
	st.ETXw = r.float()
	st.Best = topology.NodeID(r.u64())
	st.Second = topology.NodeID(r.u64())
	st.ETXaBest = r.float()
	st.ETXaSecond = r.float()
	if n := r.count(12); n > 0 {
		st.Neighbors = make([]core.NeighborState, n)
		for i := range st.Neighbors {
			st.Neighbors[i].Node = topology.NodeID(r.u64())
			st.Neighbors[i].Rank = r.u16()
			st.Neighbors[i].ETXw = r.float()
			st.Neighbors[i].LastHeard = r.i64()
		}
	}
	if n := r.count(3); n > 0 {
		st.Children = make([]core.ChildState, n)
		for i := range st.Children {
			st.Children[i].Node = topology.NodeID(r.u64())
			st.Children[i].Role = r.u8()
			st.Children[i].LastHeard = r.i64()
		}
	}
	st.Links = decodeLinks(r)
	st.FirstParentAt = r.i64()
	st.HasParentedAt = r.boolean()
	st.ParentChanges = r.i64()
	st.ChildVersion = r.i64()
	return st
}

func encodeDiGSStack(w *writer, st *core.StackState) {
	encodeDiGSRouter(w, &st.Router)
	tr := st.Trickle
	encodeTrickle(w, &tr)
	w.u64(st.RNGDraws)
	w.uvarint(uint64(len(st.Pending)))
	for _, p := range st.Pending {
		w.u64(uint64(p.To))
		w.u8(p.Role)
		w.intval(p.Tries)
	}
	w.boolean(st.WantJoinIn)
	w.i64(st.NextMaintain)
	w.i64(st.NextSolicit)
	w.boolean(st.Synced)
	w.u64(uint64(st.LastBest))
	w.u64(uint64(st.LastSecond))
	w.boolean(st.BestConfirmed)
	w.boolean(st.SecondConfirmed)
	w.u64(uint64(st.FallbackParent))
}

func decodeDiGSStack(r *reader) *core.StackState {
	st := &core.StackState{}
	st.Router = decodeDiGSRouter(r)
	st.Trickle = decodeTrickle(r)
	st.RNGDraws = r.u64()
	if n := r.count(3); n > 0 {
		st.Pending = make([]core.PendingCallbackState, n)
		for i := range st.Pending {
			st.Pending[i].To = topology.NodeID(r.u64())
			st.Pending[i].Role = r.u8()
			st.Pending[i].Tries = r.intval()
		}
	}
	st.WantJoinIn = r.boolean()
	st.NextMaintain = r.i64()
	st.NextSolicit = r.i64()
	st.Synced = r.boolean()
	st.LastBest = topology.NodeID(r.u64())
	st.LastSecond = topology.NodeID(r.u64())
	st.BestConfirmed = r.boolean()
	st.SecondConfirmed = r.boolean()
	st.FallbackParent = topology.NodeID(r.u64())
	return st
}

func encodeDiGSStacks(w *writer, stacks []*core.StackState) {
	w.uvarint(uint64(len(stacks)))
	for _, s := range stacks {
		w.boolean(s != nil)
		if s != nil {
			encodeDiGSStack(w, s)
		}
	}
}

func decodeDiGSStacks(r *reader) []*core.StackState {
	n := r.count(1)
	out := make([]*core.StackState, n)
	for i := range out {
		if r.boolean() {
			out[i] = decodeDiGSStack(r)
		}
		if r.err != nil {
			return nil
		}
	}
	return out
}

// --- Orchestra stacks ---

func encodeRPLRouter(w *writer, st *rpl.RouterState) {
	w.u16(st.Rank)
	w.float(st.PathETX)
	w.u64(uint64(st.Parent))
	w.uvarint(uint64(len(st.Neighbors)))
	for _, e := range st.Neighbors {
		w.u64(uint64(e.Node))
		w.u16(e.Rank)
		w.float(e.PathETX)
		w.i64(e.LastHeard)
	}
	encodeLinks(w, st.Links)
	w.i64(st.FirstParentAt)
	w.boolean(st.HasParentedAt)
	w.i64(st.ParentChanges)
}

func decodeRPLRouter(r *reader) rpl.RouterState {
	var st rpl.RouterState
	st.Rank = r.u16()
	st.PathETX = r.float()
	st.Parent = topology.NodeID(r.u64())
	if n := r.count(12); n > 0 {
		st.Neighbors = make([]rpl.NeighborState, n)
		for i := range st.Neighbors {
			st.Neighbors[i].Node = topology.NodeID(r.u64())
			st.Neighbors[i].Rank = r.u16()
			st.Neighbors[i].PathETX = r.float()
			st.Neighbors[i].LastHeard = r.i64()
		}
	}
	st.Links = decodeLinks(r)
	st.FirstParentAt = r.i64()
	st.HasParentedAt = r.boolean()
	st.ParentChanges = r.i64()
	return st
}

func encodeOrchStack(w *writer, st *orchestra.StackState) {
	encodeRPLRouter(w, &st.Router)
	tr := st.Trickle
	encodeTrickle(w, &tr)
	w.u64(st.RNGDraws)
	w.boolean(st.WantDIO)
	w.i64(st.NextMaintain)
	w.i64(st.NextSolicit)
	w.boolean(st.Synced)
	w.intval(st.TxBackoff)
	w.boolean(st.HasChildSlots)
	if st.HasChildSlots {
		w.uvarint(uint64(len(st.ChildSlots)))
		for _, c := range st.ChildSlots {
			w.i64(c.Slot)
			w.u64(uint64(c.Node))
		}
	}
}

func decodeOrchStack(r *reader) *orchestra.StackState {
	st := &orchestra.StackState{}
	st.Router = decodeRPLRouter(r)
	st.Trickle = decodeTrickle(r)
	st.RNGDraws = r.u64()
	st.WantDIO = r.boolean()
	st.NextMaintain = r.i64()
	st.NextSolicit = r.i64()
	st.Synced = r.boolean()
	st.TxBackoff = r.intval()
	if r.boolean() {
		st.HasChildSlots = true
		if n := r.count(2); n > 0 {
			st.ChildSlots = make([]orchestra.ChildSlotState, n)
			for i := range st.ChildSlots {
				st.ChildSlots[i].Slot = r.i64()
				st.ChildSlots[i].Node = topology.NodeID(r.u64())
			}
		}
	}
	return st
}

func encodeOrchStacks(w *writer, stacks []*orchestra.StackState) {
	w.uvarint(uint64(len(stacks)))
	for _, s := range stacks {
		w.boolean(s != nil)
		if s != nil {
			encodeOrchStack(w, s)
		}
	}
}

func decodeOrchStacks(r *reader) []*orchestra.StackState {
	n := r.count(1)
	out := make([]*orchestra.StackState, n)
	for i := range out {
		if r.boolean() {
			out[i] = decodeOrchStack(r)
		}
		if r.err != nil {
			return nil
		}
	}
	return out
}

// --- metrics ---

func encodeRecords(w *writer, rs []metrics.PacketRecord) {
	w.uvarint(uint64(len(rs)))
	for _, rec := range rs {
		w.u16(rec.Flow)
		w.u16(rec.Seq)
		w.i64(rec.ASN)
	}
}

func decodeRecords(r *reader) []metrics.PacketRecord {
	n := r.count(3)
	if n == 0 {
		return nil
	}
	out := make([]metrics.PacketRecord, n)
	for i := range out {
		out[i].Flow = r.u16()
		out[i].Seq = r.u16()
		out[i].ASN = r.i64()
	}
	return out
}

func encodeCollector(w *writer, st *metrics.CollectorState) {
	encodeRecords(w, st.Sent)
	encodeRecords(w, st.Delivered)
	w.i64(st.OutOfWindow)
	w.i64(st.DupDeliveries)
}

func decodeCollector(r *reader) *metrics.CollectorState {
	st := &metrics.CollectorState{}
	st.Sent = decodeRecords(r)
	st.Delivered = decodeRecords(r)
	st.OutOfWindow = r.i64()
	st.DupDeliveries = r.i64()
	return st
}
