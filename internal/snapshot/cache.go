package snapshot

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"github.com/digs-net/digs/internal/store"
)

// Cache is a directory of snapshots keyed by scenario identity. Warm-start
// campaigns use it to pay a scenario's formation cost once: the first run
// of a (topology, protocol, seed, config, phase) combination stores its
// converged state, and every later run — other fault plans, other branches
// — restores it instead of re-forming the network.
//
// With a Budget set the cache is a bounded LRU: Store evicts the
// least-recently-used snapshots over budget, and Load refreshes a hit's
// recency, which is what lets a long-running server keep its warm pool
// from growing without bound. The zero Budget keeps the pre-existing
// unbounded behaviour.
type Cache struct {
	Dir string
	// Budget bounds the directory (entries and/or bytes); zero means
	// unbounded. Eviction runs after each Store.
	Budget store.Budget
}

// Key identifies a cached snapshot. Label names the scenario phase the
// snapshot was taken at (e.g. "formed+30s"): the slot number itself cannot
// key the cache because formation length is an output of the run, not an
// input.
type Key struct {
	Topology   string
	Protocol   string
	Seed       int64
	ConfigHash uint64
	Label      string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s seed=%d cfg=%016x %s", k.Topology, k.Protocol, k.Seed, k.ConfigHash, k.Label)
}

// Path returns the file the key maps to. The name embeds the readable
// parts plus a hash of the full key, so collisions are impossible and a
// directory listing stays meaningful.
func (c *Cache) Path(k Key) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%s", k.Topology, k.Protocol, k.Seed, k.ConfigHash, k.Label)
	name := fmt.Sprintf("%s-%s-s%d-%016x.snap", k.Topology, k.Protocol, k.Seed, h.Sum64())
	return filepath.Join(c.Dir, name)
}

// Load returns the cached snapshot for the key, or (nil, nil) on a miss. A
// present-but-unreadable entry (corrupt, version-skewed) is also a miss:
// the stale file is removed so the caller's fresh run can replace it. A
// hit refreshes the entry's LRU recency.
func (c *Cache) Load(k Key) (*Snapshot, error) {
	path := c.Path(k)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	s, err := Decode(b)
	if err != nil {
		os.Remove(path)
		return nil, nil
	}
	if s.Meta.Topology != k.Topology || s.Meta.Protocol != k.Protocol ||
		s.Meta.Seed != k.Seed || s.Meta.ConfigHash != k.ConfigHash || s.Meta.Label != k.Label {
		// Hash collision in the file name cannot happen, but a hand-copied
		// file can; never restore state from a different scenario.
		return nil, fmt.Errorf("snapshot cache: %s holds %s, wanted %s", path, s.Meta.Label, k)
	}
	store.Touch(path)
	return s, nil
}

// Store writes the snapshot under the key, atomically (tmp + rename), so
// concurrent workers racing on the same key leave a complete file, then
// evicts least-recently-used entries over the cache budget.
func (c *Cache) Store(k Key, s *Snapshot) error {
	if s.Meta.Topology != k.Topology || s.Meta.Protocol != k.Protocol ||
		s.Meta.Seed != k.Seed || s.Meta.ConfigHash != k.ConfigHash || s.Meta.Label != k.Label {
		return fmt.Errorf("snapshot cache: storing snapshot %q under mismatched key %s", s.Meta.Label, k)
	}
	if err := WriteFile(c.Path(k), s); err != nil {
		return err
	}
	_, err := store.EvictLRU(c.Dir, ".snap", c.Budget)
	return err
}
