package rpl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/digs-net/digs/internal/topology"
)

func rssForETX(etx float64) float64 { return -60 - (etx-1)*15 }

func dio(t *testing.T, r *Router, asn int64, from topology.NodeID,
	rank uint16, pathETX, linkETX float64) bool {
	t.Helper()
	return r.OnDIO(asn, from, DIO{Rank: rank, PathETX: pathETX}, rssForETX(linkETX))
}

func TestDIORoundTrip(t *testing.T) {
	f := func(rank uint16, p float32) bool {
		if p < 0 || math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			p = 1.5
		}
		in := DIO{Rank: rank, PathETX: float64(p)}
		out, err := UnmarshalDIO(in.Marshal())
		if err != nil {
			return false
		}
		return out.Rank == in.Rank && math.Abs(out.PathETX-in.PathETX) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDIORejectsBadPayload(t *testing.T) {
	if _, err := UnmarshalDIO([]byte{1}); err == nil {
		t.Fatal("accepted short payload")
	}
}

func TestRootState(t *testing.T) {
	r := NewRouter(1, true, 1000, 1)
	if r.Rank() != 1 || !r.Joined() {
		t.Fatalf("root rank %d joined %v", r.Rank(), r.Joined())
	}
	adv, ok := r.Advertisement()
	if !ok || adv.Rank != 1 || adv.PathETX != 0 {
		t.Fatalf("root advertisement %+v / %v", adv, ok)
	}
}

func TestSingleParentSelection(t *testing.T) {
	r := NewRouter(9, false, 1<<40, 1)
	if dio(t, r, 1, 4, 1, 0, 3.0); r.Parent() != 4 {
		t.Fatalf("parent %d, want 4", r.Parent())
	}
	// A better neighbour displaces it (improvement beyond hysteresis).
	if changed := dio(t, r, 2, 5, 1, 0, 1.0); !changed {
		t.Fatal("clearly better parent did not displace incumbent")
	}
	if r.Parent() != 5 {
		t.Fatalf("parent %d, want 5", r.Parent())
	}
	if r.Rank() != 2 {
		t.Fatalf("rank %d, want 2", r.Rank())
	}
}

func TestHysteresisDampsMarginalSwitch(t *testing.T) {
	r := NewRouter(9, false, 1<<40, 1)
	dio(t, r, 1, 4, 1, 0, 1.5)
	// Slightly better (by less than the margin): must not switch.
	if changed := dio(t, r, 2, 5, 1, 0, 1.3); changed {
		t.Fatal("marginal improvement flipped the parent")
	}
	if r.Parent() != 4 {
		t.Fatalf("parent %d, want 4 (hysteresis)", r.Parent())
	}
}

func TestParentLossLeavesDODAG(t *testing.T) {
	r := NewRouter(9, false, 100, 1)
	dio(t, r, 1, 4, 1, 0, 1.0)
	if !r.Joined() {
		t.Fatal("not joined after DIO")
	}
	// Only parent expires.
	if changed := r.Maintain(500); !changed {
		t.Fatal("losing the only parent did not report a change")
	}
	if r.Joined() || r.Parent() != 0 || r.Rank() != RankInfinity {
		t.Fatalf("state after loss: joined=%v parent=%d rank=%d",
			r.Joined(), r.Parent(), r.Rank())
	}
	if _, ok := r.Advertisement(); ok {
		t.Fatal("detached node still advertises")
	}
}

func TestRepairViaTxFailures(t *testing.T) {
	r := NewRouter(9, false, 1<<40, 1)
	dio(t, r, 1, 4, 1, 0, 1.0)
	dio(t, r, 2, 5, 1, 0, 1.4)
	if r.Parent() != 4 {
		t.Fatalf("parent %d, want 4", r.Parent())
	}
	switched := false
	for i := 0; i < 50 && !switched; i++ {
		r.OnTxResult(int64(10+i), 4, false)
		switched = r.Parent() == 5
	}
	if !switched {
		t.Fatal("sustained failures did not repair onto node 5")
	}
}

func TestFirstParentAtRecorded(t *testing.T) {
	r := NewRouter(9, false, 1<<40, 1)
	if _, ok := r.FirstParentAt(); ok {
		t.Fatal("join time set before joining")
	}
	dio(t, r, 42, 4, 1, 0, 1.0)
	at, ok := r.FirstParentAt()
	if !ok || at != 42 {
		t.Fatalf("FirstParentAt = (%d, %v), want (42, true)", at, ok)
	}
}

func TestParentChangesCount(t *testing.T) {
	r := NewRouter(9, false, 1<<40, 1)
	dio(t, r, 1, 4, 1, 0, 3.0)
	dio(t, r, 2, 5, 1, 0, 1.0) // switch
	dio(t, r, 3, 5, 1, 0, 1.0) // no-op
	if got := r.ParentChanges(); got != 2 {
		t.Fatalf("parent changes = %d, want 2", got)
	}
}

func TestRPLInvariantsUnderRandomEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		r := NewRouter(100, false, 1<<40, 4)
		for step := 0; step < 120; step++ {
			from := topology.NodeID(rng.Intn(20) + 1)
			switch rng.Intn(4) {
			case 0, 1:
				d := DIO{Rank: uint16(rng.Intn(60) + 1), PathETX: rng.Float64() * 12}
				if rng.Intn(10) == 0 {
					d.Rank = RankInfinity
				}
				r.OnDIO(int64(step), from, d, -60-rng.Float64()*35)
			case 2:
				r.OnTxResult(int64(step), from, rng.Intn(3) > 0)
			case 3:
				r.Maintain(int64(step))
			}
			if p := r.Parent(); p != 0 {
				if r.Rank() >= RankInfinity {
					t.Fatalf("trial %d step %d: parented with infinite rank", trial, step)
				}
				adv, ok := r.Advertisement()
				if !ok {
					t.Fatalf("trial %d step %d: parented but not advertising", trial, step)
				}
				if adv.PathETX < 0 || math.IsInf(adv.PathETX, 0) || math.IsNaN(adv.PathETX) {
					t.Fatalf("trial %d step %d: bad path ETX %v", trial, step, adv.PathETX)
				}
			} else if r.Rank() != RankInfinity {
				t.Fatalf("trial %d step %d: detached with finite rank %d", trial, step, r.Rank())
			}
			// Potential children all advertise above our rank.
			for _, c := range r.PotentialChildren() {
				if r.Rank() >= RankInfinity {
					t.Fatalf("trial %d step %d: children while detached", trial, step)
				}
				_ = c
			}
		}
	}
}
