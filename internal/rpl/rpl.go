// Package rpl implements the tree-routing baseline the paper compares
// against: RPL (RFC 6550) specialised for upward collection traffic. Each
// node keeps a single preferred parent — the defining difference from DiGS
// graph routing — chosen by minimum accumulated ETX over DIO
// advertisements, with Trickle-gated DIOs and DIS solicitation.
package rpl

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/digs-net/digs/internal/link"
	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// RankInfinity marks a node outside the DODAG.
const RankInfinity = math.MaxUint16

// parentSwitchMargin is the path-ETX improvement needed to displace the
// preferred parent. Contiki's RPL uses a wide switch threshold (~1.5 ETX),
// one of the reasons tree routing is slow to abandon a failed parent.
const parentSwitchMargin = 1.5

// DIO is the advertisement payload: the sender's rank and its path ETX to
// the root.
type DIO struct {
	Rank    uint16
	PathETX float64
}

const dioSize = 2 + 4

// Marshal encodes the DIO payload.
func (d DIO) Marshal() []byte {
	buf := make([]byte, dioSize)
	binary.BigEndian.PutUint16(buf[0:2], d.Rank)
	binary.BigEndian.PutUint32(buf[2:6], math.Float32bits(float32(d.PathETX)))
	return buf
}

// UnmarshalDIO decodes a DIO payload.
func UnmarshalDIO(b []byte) (DIO, error) {
	if len(b) != dioSize {
		return DIO{}, fmt.Errorf("dio payload: %d bytes, want %d", len(b), dioSize)
	}
	p := float64(math.Float32frombits(binary.BigEndian.Uint32(b[2:6])))
	if math.IsNaN(p) || p < 0 {
		return DIO{}, fmt.Errorf("dio payload: invalid path ETX %v", p)
	}
	return DIO{Rank: binary.BigEndian.Uint16(b[0:2]), PathETX: p}, nil
}

type neighborEntry struct {
	rank      uint16
	pathETX   float64
	lastHeard sim.ASN
}

// Router is one node's RPL routing state: a neighbour table and a single
// preferred parent.
type Router struct {
	id     topology.NodeID
	isRoot bool

	rank    uint16
	pathETX float64
	parent  topology.NodeID

	est       *link.Estimator
	neighbors map[topology.NodeID]neighborEntry

	neighborTimeout sim.ASN

	// rankScale is RPL's MinHopRankIncrease: the per-hop rank step is the
	// link ETX scaled by this factor (minimum one).
	rankScale int

	firstParentAt sim.ASN
	hasParentedAt bool
	parentChanges int64

	// OnParentChange, when set, is invoked whenever the preferred parent
	// switches. The telemetry subsystem uses it to correlate loss windows
	// with route churn.
	OnParentChange func(asn sim.ASN, parent topology.NodeID)
}

// NewRouter creates RPL state for a node. Roots (access points) have rank
// 1 and path ETX 0. rankScale is MinHopRankIncrease (minimum 1).
func NewRouter(id topology.NodeID, isRoot bool, neighborTimeout sim.ASN, rankScale int) *Router {
	if rankScale < 1 {
		rankScale = 1
	}
	r := &Router{
		id:      id,
		isRoot:  isRoot,
		rank:    RankInfinity,
		pathETX: math.Inf(1),
		// Contiki-class link statistics: the tree-routing baseline reacts
		// to failures much more slowly than DiGS's prescribed penalties,
		// which is the root of its long repair times (paper Section IV).
		est:             link.NewEstimatorWithProfile(link.ConservativeProfile()),
		neighbors:       make(map[topology.NodeID]neighborEntry),
		neighborTimeout: neighborTimeout,
		rankScale:       rankScale,
	}
	if isRoot {
		r.rank = 1
		r.pathETX = 0
	}
	return r
}

// rankIncrease is the rank step for a hop over a link with the given ETX.
func (r *Router) rankIncrease(linkETX float64) uint16 {
	inc := int(linkETX*float64(r.rankScale) + 0.5)
	if inc < 1 {
		inc = 1
	}
	if r.rankScale > 1 && inc < r.rankScale {
		inc = r.rankScale
	}
	return uint16(inc)
}

// Rank returns the node's rank.
func (r *Router) Rank() uint16 { return r.rank }

// Parent returns the preferred parent (0 when none).
func (r *Router) Parent() topology.NodeID { return r.parent }

// Joined reports whether the node is in the DODAG.
func (r *Router) Joined() bool { return r.isRoot || r.parent != 0 }

// Neighbors returns the current neighbor-table size.
func (r *Router) Neighbors() int { return len(r.neighbors) }

// FirstParentAt returns when the node first acquired a parent.
func (r *Router) FirstParentAt() (sim.ASN, bool) { return r.firstParentAt, r.hasParentedAt }

// ParentChanges returns how many times the preferred parent switched.
func (r *Router) ParentChanges() int64 { return r.parentChanges }

// PotentialChildren returns the neighbours advertising a rank above this
// node's own — the set that may route through it. Orchestra's sender-based
// schedule listens in these nodes' transmit cells.
func (r *Router) PotentialChildren() []topology.NodeID {
	if r.rank >= RankInfinity {
		return nil
	}
	var out []topology.NodeID
	for id, e := range r.neighbors {
		if e.rank > r.rank && e.rank < RankInfinity {
			out = append(out, id)
		}
	}
	// Sorted order keeps downstream consumers (Orchestra's sender-cell
	// table) independent of map iteration order.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Advertisement returns the DIO this node currently sends, if any.
func (r *Router) Advertisement() (DIO, bool) {
	if !r.Joined() || math.IsInf(r.pathETX, 1) {
		return DIO{}, false
	}
	return DIO{Rank: r.rank, PathETX: r.pathETX}, true
}

// Observe feeds link information from any received frame.
func (r *Router) Observe(from topology.NodeID, rssiDBm float64) {
	r.est.Observe(from, rssiDBm)
}

// OnDIO folds an advertisement into the neighbour table and re-evaluates
// the preferred parent. It returns true when the parent changed.
func (r *Router) OnDIO(asn sim.ASN, from topology.NodeID, d DIO, rssiDBm float64) bool {
	r.est.Observe(from, rssiDBm)
	r.neighbors[from] = neighborEntry{rank: d.Rank, pathETX: d.PathETX, lastHeard: asn}
	if r.isRoot {
		return false
	}
	return r.reselect(asn)
}

// OnTxResult folds a unicast outcome into the estimator; failures trigger
// re-evaluation. Returns true when the parent changed.
func (r *Router) OnTxResult(asn sim.ASN, to topology.NodeID, acked bool) bool {
	r.est.TxResult(to, acked)
	if r.isRoot || acked {
		return false
	}
	return r.reselect(asn)
}

// Maintain expires stale neighbours; returns true when the parent changed.
func (r *Router) Maintain(asn sim.ASN) bool {
	for id, n := range r.neighbors {
		if asn-n.lastHeard > r.neighborTimeout {
			delete(r.neighbors, id)
			r.est.Forget(id)
		}
	}
	if r.isRoot {
		return false
	}
	return r.reselect(asn)
}

func (r *Router) cost(n topology.NodeID, e neighborEntry) float64 {
	l := r.est.ETX(n)
	if l >= phy.ETXUnreachable {
		return math.Inf(1)
	}
	return l + e.pathETX
}

// reselect picks the neighbour minimising accumulated path ETX, with
// switch hysteresis; rank loops are avoided by requiring the parent's rank
// to be below the node's own previous-parent-derived rank only weakly (RPL
// allows greediness; persistent loops are broken by the max-rank check).
func (r *Router) reselect(asn sim.ASN) bool {
	oldParent := r.parent

	best := topology.NodeID(0)
	bestCost := math.Inf(1)
	for id, e := range r.neighbors {
		if e.rank >= RankInfinity {
			continue
		}
		// Loop avoidance: never route through a neighbour that is not
		// strictly closer to the root than we are (unless detached).
		if r.rank < RankInfinity && e.rank >= r.rank {
			continue
		}
		// Tie-break equal costs on the lower node ID: the winner must not
		// depend on map iteration order, or identical seeds diverge.
		if c := r.cost(id, e); c < bestCost || (c == bestCost && best != 0 && id < best) {
			best, bestCost = id, c
		}
	}

	if oldParent != 0 && best != oldParent {
		if e, ok := r.neighbors[oldParent]; ok && e.rank < RankInfinity && e.rank < r.rank {
			if c := r.cost(oldParent, e); !math.IsInf(c, 1) && bestCost > c-parentSwitchMargin {
				best, bestCost = oldParent, c
			}
		}
	}

	if best == 0 {
		r.parent = 0
		r.rank = RankInfinity
		r.pathETX = math.Inf(1)
		return oldParent != 0
	}

	r.parent = best
	rank := r.neighbors[best].rank + r.rankIncrease(r.est.ETX(best))
	if rank < r.neighbors[best].rank || rank >= RankInfinity {
		rank = RankInfinity - 1 // saturate, never wrap
	}
	r.rank = rank
	r.pathETX = bestCost
	if !r.hasParentedAt {
		r.hasParentedAt = true
		r.firstParentAt = asn
	}
	if best != oldParent {
		r.parentChanges++
		if r.OnParentChange != nil {
			r.OnParentChange(asn, best)
		}
		return true
	}
	return false
}
