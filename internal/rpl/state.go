package rpl

import (
	"sort"

	"github.com/digs-net/digs/internal/link"
	"github.com/digs-net/digs/internal/topology"
)

// NeighborState is one RPL neighbour-table entry as plain old data.
type NeighborState struct {
	Node      topology.NodeID
	Rank      uint16
	PathETX   float64
	LastHeard int64
}

// RouterState is the complete mutable RPL routing state of one node.
type RouterState struct {
	Rank          uint16
	PathETX       float64
	Parent        topology.NodeID
	Neighbors     []NeighborState // sorted by node ID
	Links         []link.LinkState
	FirstParentAt int64
	HasParentedAt bool
	ParentChanges int64
}

// CaptureState snapshots the router, with the neighbour table sorted for a
// stable wire form.
func (r *Router) CaptureState() RouterState {
	st := RouterState{
		Rank:          r.rank,
		PathETX:       r.pathETX,
		Parent:        r.parent,
		Links:         r.est.CaptureState(),
		FirstParentAt: r.firstParentAt,
		HasParentedAt: r.hasParentedAt,
		ParentChanges: r.parentChanges,
	}
	if len(r.neighbors) > 0 {
		st.Neighbors = make([]NeighborState, 0, len(r.neighbors))
		for id, e := range r.neighbors {
			st.Neighbors = append(st.Neighbors, NeighborState{Node: id, Rank: e.rank,
				PathETX: e.pathETX, LastHeard: e.lastHeard})
		}
		sort.Slice(st.Neighbors, func(i, j int) bool { return st.Neighbors[i].Node < st.Neighbors[j].Node })
	}
	return st
}

// RestoreState overlays a captured routing state. The OnParentChange
// callback installed on the freshly built router survives.
func (r *Router) RestoreState(st RouterState) {
	r.rank = st.Rank
	r.pathETX = st.PathETX
	r.parent = st.Parent
	r.est.RestoreState(st.Links)
	r.neighbors = make(map[topology.NodeID]neighborEntry, len(st.Neighbors))
	for _, e := range st.Neighbors {
		r.neighbors[e.Node] = neighborEntry{rank: e.Rank, pathETX: e.PathETX, lastHeard: e.LastHeard}
	}
	r.firstParentAt = st.FirstParentAt
	r.hasParentedAt = st.HasParentedAt
	r.parentChanges = st.ParentChanges
}
