package experiments

import (
	"time"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/whart"
)

// RunWhartFailure runs the executable centralized baseline through the
// node-failure scenario and returns its PDR before and after its busiest
// primary router dies. The static schedule never recovers — the contrast
// the paper's Figure 3 motivation builds on.
func RunWhartFailure(seed int64) (clean, failed float64, err error) {
	topo := testbedATopo()
	nw := sim.NewNetwork(topo, seed)
	fl := make([]whart.Flow, 0, len(topo.SuggestedSources))
	for i, src := range topo.SuggestedSources {
		fl = append(fl, whart.Flow{ID: uint16(i + 1), Source: src, PeriodSlots: 500})
	}
	net, err := whart.Build(nw, fl, mac.DefaultConfig())
	if err != nil {
		return 0, 0, err
	}
	nw.Run(sim.SlotsFor(60 * time.Second)) // time sync

	window := func(seqBase uint16) float64 {
		col := metrics.NewCollector()
		net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
		for p := 0; p < 12; p++ {
			for _, f := range fl {
				seq := seqBase + uint16(p)
				col.Sent(f.ID, seq, nw.ASN())
				_ = net.Nodes[f.Source].InjectData(&sim.Frame{
					Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: nw.ASN(),
				})
			}
			nw.Run(500)
		}
		nw.Run(sim.SlotsFor(15 * time.Second))
		net.OnDeliver(nil)
		return col.PDR()
	}

	clean = window(0)

	// Kill the most-used primary router.
	use := map[topology.NodeID]int{}
	for _, f := range fl {
		cur := f.Source
		for !topo.IsAP(cur) {
			use[net.Routes.Best[cur]]++
			cur = net.Routes.Best[cur]
		}
	}
	var victim topology.NodeID
	most := 0
	for id, n := range use {
		if !topo.IsAP(id) && n > most {
			victim, most = id, n
		}
	}
	if victim != 0 {
		nw.Fail(victim)
	}
	failed = window(1000)
	return clean, failed, nil
}
