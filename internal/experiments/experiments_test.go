package experiments

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/metrics"
)

func TestFig3Shape(t *testing.T) {
	rows, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Figure 3 has %d bars, want 4", len(rows))
	}
	byName := map[string]Fig3Row{}
	for _, r := range rows {
		byName[r.Topology] = r
		if r.Total != r.Collect+r.Compute+r.Disseminate {
			t.Fatalf("%s: total mismatch", r.Topology)
		}
	}
	// Full testbeds take several times longer than half testbeds, and the
	// absolute scale is minutes (the paper: 203/506 s and 191/443 s).
	if byName["testbed-a"].Total < 2*byName["half-testbed-a"].Total {
		t.Fatalf("full A (%v) vs half A (%v): scaling too flat",
			byName["testbed-a"].Total, byName["half-testbed-a"].Total)
	}
	if byName["testbed-a"].Total < 100*time.Second {
		t.Fatalf("full A update %v; want minutes", byName["testbed-a"].Total)
	}
}

func TestInterferenceComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	opts := DefaultInterferenceOptions("A")
	opts.FlowSets = 20
	opts.PacketsPerFlow = 12
	res, err := RunInterference(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DiGS) != opts.FlowSets || len(res.Orchestra) != opts.FlowSets {
		t.Fatalf("flow set counts: %d / %d", len(res.DiGS), len(res.Orchestra))
	}

	dPDR := metrics.Mean(PDRs(res.DiGS))
	oPDR := metrics.Mean(PDRs(res.Orchestra))
	t.Logf("PDR under interference: DiGS %.3f, Orchestra %.3f", dPDR, oPDR)
	// Figure 9(a): DiGS delivers more than Orchestra under jamming.
	if dPDR < oPDR {
		t.Errorf("DiGS PDR %.3f below Orchestra %.3f under interference", dPDR, oPDR)
	}
	if dPDR < 0.75 {
		t.Errorf("DiGS PDR %.3f unreasonably low", dPDR)
	}

	dLat := metrics.Mean(AllLatenciesMs(res.DiGS))
	oLat := metrics.Mean(AllLatenciesMs(res.Orchestra))
	t.Logf("mean latency: DiGS %.0f ms, Orchestra %.0f ms", dLat, oLat)
	// Figure 9(b): DiGS's latency beats Orchestra's (the mean captures
	// Orchestra's heavy retransmission tail).
	if dLat > oLat {
		t.Errorf("DiGS mean latency %.0f ms above Orchestra %.0f ms", dLat, oLat)
	}
}

func TestFig9fMicrobenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	res, err := RunFig9f(DiGS, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) == 0 {
		t.Fatal("no flows measured")
	}
	// Packets before the burst must flow.
	okBefore := 0
	for _, seqs := range res.Delivered {
		if seqs[74] {
			okBefore++
		}
	}
	if okBefore == 0 {
		t.Fatal("nothing delivered even before the jammer burst")
	}
}

func TestFig13JoinTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	res, err := RunFig13(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DiGS) != 48 || len(res.Orchestra) != 48 {
		t.Fatalf("join-time sample counts %d/%d, want 48 each", len(res.DiGS), len(res.Orchestra))
	}
	for _, d := range res.DiGS {
		if d < 0 || d > 5*time.Minute {
			t.Fatalf("DiGS join time %v out of range", d)
		}
	}
}

func TestRepairSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	opts := DefaultRepairOptions()
	opts.JammerCounts = []int{2}
	opts.Repetitions = 1
	rs, err := RunFig4And5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results", len(rs))
	}
	if len(rs[0].FlowPDRs) == 0 {
		t.Fatal("no flow PDRs measured")
	}
	if rs[0].RepairTime < 0 || rs[0].RepairTime > repairBudget {
		t.Fatalf("repair time %v out of range", rs[0].RepairTime)
	}
}

func TestFailureComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	opts := DefaultFailureOptions() // 4 repetitions x 4 cumulative victims
	digs, orch, err := RunFig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	if digs.TotalFlows == 0 || orch.TotalFlows == 0 {
		t.Fatalf("no flows measured: DiGS %d, Orchestra %d", digs.TotalFlows, orch.TotalFlows)
	}
	dPDR := metrics.Mean(digs.FlowPDRs)
	oPDR := metrics.Mean(orch.FlowPDRs)
	t.Logf("PDR with router failures: DiGS %.3f (disconnected %d/%d), Orchestra %.3f (disconnected %d/%d)",
		dPDR, digs.DisconnectedFlows, digs.TotalFlows, oPDR, orch.DisconnectedFlows, orch.TotalFlows)
	// Figure 11(a): DiGS keeps flows alive through failures. A small
	// tolerance absorbs seed noise in this reduced campaign; the full
	// campaign (digs-bench -fig 11 -full) shows the clear gap.
	if dPDR < oPDR-0.03 {
		t.Errorf("DiGS PDR %.3f below Orchestra %.3f under node failure", dPDR, oPDR)
	}
}

func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	opts := LargeScaleOptions{
		Nodes: 40, AreaM: 160, Disturbers: 2,
		FlowSets: 2, FlowsPerSet: 6, PacketsPerFlow: 8, Seed: 7,
	}
	res, err := RunFig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DiGS) != 2 || len(res.Orchestra) != 2 {
		t.Fatalf("flow set counts %d/%d", len(res.DiGS), len(res.Orchestra))
	}
	for _, r := range append(res.DiGS, res.Orchestra...) {
		if r.GeneratedPackets != 6*8 {
			t.Fatalf("generated %d packets, want 48", r.GeneratedPackets)
		}
		if r.PDR < 0 || r.PDR > 1 {
			t.Fatalf("PDR %v out of range", r.PDR)
		}
	}
	// The series extractors cover every flow set.
	if len(PowersPerPacket(res.DiGS)) != 2 || len(DutiesPerPacket(res.DiGS)) != 2 {
		t.Fatal("series extractors lost flow sets")
	}
}

func TestWhartFailureContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	clean, failed, err := RunWhartFailure(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static WirelessHART: clean %.3f, after failure %.3f", clean, failed)
	if clean < 0.9 {
		t.Fatalf("static schedule clean PDR %.3f, want >= 0.9", clean)
	}
	if failed >= clean {
		t.Fatalf("failure did not degrade the static schedule: %.3f -> %.3f", clean, failed)
	}
}

func TestFig11bMicroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	res, err := RunFig11b(DiGS, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromSeq != 30 || res.ToSeq != 40 {
		t.Fatalf("window [%d, %d], want [30, 40]", res.FromSeq, res.ToSeq)
	}
	if len(res.Delivered) != 8 {
		t.Fatalf("measured %d flows, want 8", len(res.Delivered))
	}
}

func TestProtocolString(t *testing.T) {
	if DiGS.String() != "DiGS" || Orchestra.String() != "Orchestra" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(99).String() == "" {
		t.Fatal("unknown protocol has empty name")
	}
}

func TestRepairTimesSecondsExtractor(t *testing.T) {
	rs := []RepairResult{{RepairTime: 30 * time.Second}, {RepairTime: time.Minute}}
	got := RepairTimesSeconds(rs)
	if len(got) != 2 || got[0] != 30 || got[1] != 60 {
		t.Fatalf("RepairTimesSeconds = %v", got)
	}
}
