package experiments

import (
	"fmt"
	"reflect"
	"testing"
)

// TestFig4And5ParallelMatchesSequential is the campaign-runner determinism
// regression: the same Testbed A repair campaign, run once sequentially and
// once on a four-worker pool, must produce byte-identical metric series.
// Each job derives its RNG seed from the job index alone, so worker
// scheduling cannot leak into the results.
func TestFig4And5ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four repair campaigns")
	}
	run := func(parallel int) []RepairResult {
		opts := DefaultRepairOptions()
		opts.JammerCounts = []int{1, 2}
		opts.Repetitions = 1
		opts.Seed = 42
		opts.Parallel = parallel
		res, err := RunFig4And5(opts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel campaign diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	// Belt and braces: the printed metric series must match byte for byte.
	if s, p := fmt.Sprintf("%#v", seq), fmt.Sprintf("%#v", par); s != p {
		t.Fatalf("formatted metric series differ:\nseq: %s\npar: %s", s, p)
	}
}

// TestInterferenceRunTwiceIdentical regresses the Orchestra/RPL map-order
// bug: parent reselection used to break cost ties by map iteration order,
// so two identically-seeded runs in the same process could diverge. Both
// protocol campaigns must reproduce themselves exactly.
func TestInterferenceRunTwiceIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four interference campaigns")
	}
	run := func() *InterferenceResult {
		opts := DefaultInterferenceOptions("A")
		opts.FlowSets = 3
		opts.Seed = 1
		opts.Parallel = 1
		res, err := RunInterference(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.DiGS, b.DiGS) {
		t.Errorf("DiGS campaign not reproducible:\n  a=%+v\n  b=%+v", a.DiGS, b.DiGS)
	}
	if !reflect.DeepEqual(a.Orchestra, b.Orchestra) {
		t.Errorf("Orchestra campaign not reproducible:\n  a=%+v\n  b=%+v", a.Orchestra, b.Orchestra)
	}
}

// TestFig11ParallelMatchesSequential covers the repetition-merge path:
// per-repetition partial results must be concatenated in repetition order
// regardless of which worker finished first.
func TestFig11ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four failure campaigns")
	}
	run := func(parallel int) *FailureResult {
		opts := DefaultFailureOptions()
		opts.Repetitions = 2
		opts.Victims = 2
		opts.Seed = 42
		opts.Parallel = parallel
		res, err := RunFailureSingle(DiGS, opts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel failure campaign diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}
