package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/interference"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// RepairOptions parameterise the Section IV empirical study (Figures 4
// and 5): Orchestra's repair behaviour when WiFi jammers switch on.
type RepairOptions struct {
	// JammerCounts are the jammer population sizes to test (paper: 1..4).
	JammerCounts []int
	// Repetitions per jammer count (paper: 3).
	Repetitions int
	// Protocol under test; the paper measures Orchestra here, but the
	// runner accepts DiGS for the comparison benches.
	Protocol Protocol
	Seed     int64
	// Parallel bounds the campaign worker pool; 0 uses the process-wide
	// default (GOMAXPROCS or the -parallel flag).
	Parallel int
	// Tracer, when set, returns the packet-lifecycle sink for the given
	// job index (jammer counts x repetitions, in declaration order). Each
	// parallel job must get its own sink; wrap per-job sinks in
	// telemetry.WithJob and merge with telemetry.MergeJSONL to get a
	// deterministic combined trace.
	Tracer func(job int) telemetry.Tracer
	// Invariants runs the invariant monitor (with self-healing watchdogs)
	// during each repair window and reports per-run violation counts.
	Invariants bool
}

// DefaultRepairOptions mirrors the paper's setup.
func DefaultRepairOptions() RepairOptions {
	return RepairOptions{
		JammerCounts: []int{1, 2, 3, 4},
		Repetitions:  3,
		Protocol:     Orchestra,
		Seed:         1,
	}
}

// RepairResult is one repetition's outcome.
type RepairResult struct {
	Jammers    int
	RepairTime time.Duration
	// FlowPDRs are the 8 data flows' delivery rates during the repair
	// window (Figure 5's boxplot samples).
	FlowPDRs []float64
	// Violations/Repairs count what the invariant monitor saw during the
	// run (zero unless RepairOptions.Invariants is set).
	Violations int
	Repairs    int
}

// RunFig4And5 reproduces Figures 4 and 5: for each jammer count, let the
// network converge, switch the jammers on, and measure (a) the repair time
// — how long routing keeps changing after the interference starts — and
// (b) the PDR of 8 data flows during the repair window.
func RunFig4And5(opts RepairOptions) ([]RepairResult, error) {
	// Each (jammer count, repetition) pair is an independent run with its
	// own seed, so the campaign fans out over the worker pool; the seed
	// formula matches the historical sequential loop exactly.
	type job struct {
		jammers int
		rep     int
		seed    int64
	}
	var jobs []job
	for _, jc := range opts.JammerCounts {
		for rep := 0; rep < opts.Repetitions; rep++ {
			jobs = append(jobs, job{
				jammers: jc,
				rep:     rep,
				seed:    opts.Seed*1000 + int64(jc)*100 + int64(rep),
			})
		}
	}
	results, err := campaign.Map(campaign.New(opts.Parallel), len(jobs), func(i int) (RepairResult, error) {
		var tr telemetry.Tracer
		if opts.Tracer != nil {
			tr = opts.Tracer(i)
		}
		return runRepair(jobs[i].jammers, opts.Protocol, jobs[i].seed, tr, opts.Invariants)
	})
	var pe *campaign.PanicError
	if errors.As(err, &pe) {
		j := jobs[pe.Job]
		return nil, fmt.Errorf("fig 4/5 campaign: %s run with %d jammer(s), repetition %d (job %d, seed %d) panicked: %v\n%s",
			opts.Protocol, j.jammers, j.rep, pe.Job, j.seed, pe.Value, pe.Stack)
	}
	return results, err
}

// repairStabilityWindow is how long routing must stay quiet for the repair
// to be considered complete.
const repairStabilityWindow = 15 * time.Second

// repairBudget bounds the repair measurement.
const repairBudget = 150 * time.Second

func runRepair(jammerCount int, proto Protocol, seed int64, tr telemetry.Tracer,
	invariants bool) (RepairResult, error) {
	topo := testbedATopo()
	nw, net, err := buildNetwork(proto, topo, seed)
	if err != nil {
		return RepairResult{}, err
	}
	if tr != nil {
		net.SetTracer(tr)
		telemetry.AttachSim(nw, tr)
	}
	if err := converge(nw, net, 240*time.Second); err != nil {
		return RepairResult{}, err
	}
	// Let routing settle before the disturbance.
	nw.Run(sim.SlotsFor(60 * time.Second))

	// The invariant monitor attaches once the network is formed; it rides
	// the tracer chain and emits violations into the trace when one is
	// being written.
	var mon *invariant.Monitor
	if invariants {
		mon = invariant.New(invariant.Config{Emit: tr, Heal: net.Healer()})
		var chain telemetry.Tracer = mon
		if tr != nil {
			chain = telemetry.Multi(tr, mon)
		}
		net.SetTracer(chain)
		invariant.Attach(nw, mon, net.Prober(nw), 0)
	}

	// Arm the jammers to start now.
	jamStart := nw.ASN()
	for j := 0; j < jammerCount && j < len(topo.SuggestedJammers); j++ {
		nw.AddInterferer(&interference.Window{
			Source:   interference.NewWiFiJammer(topo, topo.SuggestedJammers[j], wifiChannelFor(j), seed+int64(j)),
			StartASN: jamStart,
		})
	}

	// Traffic during the repair: the paper's 8 flows at 5 s period.
	col := metrics.NewCollector()
	net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
	fset := flows.FixedSet(topo.SuggestedSources, 5*time.Second)
	packets := int(repairBudget / (5 * time.Second))
	flows.Schedule(nw, fset, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		col.Sent(f.ID, seq, asn)
		_ = net.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})

	// Watch routing churn among the nodes the jammers actually disturb:
	// the repair ends when their parent changes stop. (Network-wide
	// counters would extend the repair with unrelated Trickle noise.)
	cohort := jamCohort(nw, jammerCount)
	windowPolls := int(repairStabilityWindow / time.Second)
	history := []int64{net.ParentChangesOf(cohort)}
	repair := repairBudget // censored at the budget if churn never calms
	for nw.ASN() < jamStart+sim.SlotsFor(repairBudget) {
		nw.Run(100) // poll once per second
		history = append(history, net.ParentChangesOf(cohort))
		if len(history) <= windowPolls {
			continue
		}
		// Repaired when the disturbed region's routing churn has calmed
		// to at most one change per stability window (under sustained
		// jamming the estimators keep micro-adjusting, so demanding total
		// silence would never terminate).
		recent := history[len(history)-1] - history[len(history)-1-windowPolls]
		if recent <= 1 {
			repair = sim.TimeAt(nw.ASN()-jamStart) - repairStabilityWindow
			break
		}
	}
	net.OnDeliver(nil)

	if tr != nil {
		net.SetTracer(nil)
		telemetry.AttachSim(nw, nil)
		if err := tr.Flush(); err != nil {
			return RepairResult{}, fmt.Errorf("fig 4/5 trace flush: %w", err)
		}
	}

	pdrs := make([]float64, 0, len(fset))
	for _, f := range fset {
		pdrs = append(pdrs, col.FlowPDR(f.ID))
	}
	res := RepairResult{Jammers: jammerCount, RepairTime: repair, FlowPDRs: pdrs}
	if mon != nil {
		rep := mon.Report()
		res.Violations = rep.Total
		res.Repairs = rep.Repairs
	}
	return res, nil
}

// jamCohort returns the field devices within disruption range of the
// active jammers.
func jamCohort(nw *sim.Network, jammerCount int) []topology.NodeID {
	topo := nw.Topology()
	const disruptionRadiusM = 18.0
	var out []topology.NodeID
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		for j := 0; j < jammerCount && j < len(topo.SuggestedJammers); j++ {
			if topo.Distance(id, topo.SuggestedJammers[j]) <= disruptionRadiusM {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// wifiChannelFor spreads jammers across the common WiFi channels.
func wifiChannelFor(i int) int {
	return []int{1, 6, 11, 6}[i%4]
}

// RepairTimesSeconds extracts the Figure 4 CDF samples.
func RepairTimesSeconds(rs []RepairResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.RepairTime.Seconds()
	}
	return out
}
