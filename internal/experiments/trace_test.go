package experiments

import (
	"bytes"
	"math"
	"testing"

	"github.com/digs-net/digs/internal/telemetry"
)

// runTracedFig4 runs the reduced Figure 4/5 campaign with per-job JSONL
// sinks and returns the results plus the merged trace bytes.
func runTracedFig4(t *testing.T, parallel int) ([]RepairResult, []byte) {
	t.Helper()
	opts := DefaultRepairOptions()
	opts.JammerCounts = []int{1, 2}
	opts.Repetitions = 1
	opts.Seed = 42
	opts.Parallel = parallel

	parts := make([]bytes.Buffer, len(opts.JammerCounts)*opts.Repetitions)
	opts.Tracer = func(job int) telemetry.Tracer {
		return telemetry.WithJob(telemetry.NewJSONL(&parts[job]), job)
	}
	res, err := RunFig4And5(opts)
	if err != nil {
		t.Fatalf("parallel=%d: %v", parallel, err)
	}
	raw := make([][]byte, len(parts))
	for i := range parts {
		raw[i] = parts[i].Bytes()
	}
	var merged bytes.Buffer
	if err := telemetry.MergeJSONL(&merged, raw...); err != nil {
		t.Fatalf("parallel=%d: merge: %v", parallel, err)
	}
	return res, merged.Bytes()
}

// TestTraceDeterministicAcrossWorkers is the telemetry determinism
// regression: the merged packet-lifecycle trace of a campaign must be
// byte-identical whether the jobs ran sequentially or on a worker pool.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four traced repair campaigns")
	}
	seqRes, seqTrace := runTracedFig4(t, 1)
	parRes, parTrace := runTracedFig4(t, 4)
	if !bytes.Equal(seqTrace, parTrace) {
		t.Fatalf("merged traces differ between sequential (%d bytes) and parallel (%d bytes)",
			len(seqTrace), len(parTrace))
	}
	if len(seqRes) != len(parRes) {
		t.Fatalf("result counts differ: %d vs %d", len(seqRes), len(parRes))
	}

	// Acceptance criterion: the event stream alone must reproduce the
	// metrics collector's delivery accounting. Replay the merged trace
	// through the aggregator and compare each job's per-flow PDR against
	// the RepairResult the collector computed.
	agg := telemetry.NewAggregate(151)
	if err := telemetry.Scan(bytes.NewReader(seqTrace), func(ev telemetry.Event) error {
		agg.Record(ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if agg.Jobs() != len(seqRes) {
		t.Fatalf("trace contains %d jobs, want %d", agg.Jobs(), len(seqRes))
	}
	for job, res := range seqRes {
		for i, wantPDR := range res.FlowPDRs {
			flow := uint16(i + 1) // flows.FixedSet numbers flows from 1
			gotPDR := agg.FlowPDR(int32(job), flow)
			if math.Abs(gotPDR-wantPDR) > 1e-12 {
				t.Errorf("job %d flow %d: trace PDR %.6f != collector PDR %.6f",
					job, flow, gotPDR, wantPDR)
			}
		}
	}
}
