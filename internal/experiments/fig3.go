package experiments

import (
	"time"

	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/whart"
)

// Fig3Row is one bar of Figure 3: the time the centralized WirelessHART
// Network Manager needs to react to network dynamics on one deployment.
type Fig3Row struct {
	Topology    string
	Nodes       int
	Collect     time.Duration
	Compute     time.Duration
	Disseminate time.Duration
	Total       time.Duration
}

// RunFig3 reproduces Figure 3: the centralized update cycle on the half
// and full versions of both testbeds.
func RunFig3() ([]Fig3Row, error) {
	cfg := whart.DefaultManagerConfig()
	var rows []Fig3Row
	for _, topo := range []*topology.Topology{
		topology.HalfTestbedA(), topology.TestbedA(),
		topology.HalfTestbedB(), topology.TestbedB(),
	} {
		u, err := whart.UpdateCycle(topo, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{
			Topology:    topo.Name,
			Nodes:       topo.N(),
			Collect:     u.Collect,
			Compute:     u.Compute,
			Disseminate: u.Disseminate,
			Total:       u.Total(),
		})
	}
	return rows, nil
}
