package experiments

import (
	"os"
	"reflect"
	"testing"
)

// TestInterferenceWarmStartIdentical proves the CacheDir path end to end:
// a campaign that forms its networks and populates the snapshot cache, a
// campaign that restores from it, and a campaign that never touches a
// cache all produce exactly the same figure series.
func TestInterferenceWarmStartIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three interference campaigns")
	}
	dir := t.TempDir()
	run := func(cacheDir string) *InterferenceResult {
		opts := DefaultInterferenceOptions("A")
		opts.FlowSets = 2
		opts.Seed = 1
		opts.Parallel = 1
		opts.CacheDir = cacheDir
		res, err := RunInterference(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("cold campaign left %d cache entries, want 2 (one per protocol)", len(entries))
	}
	warm := run(dir)
	uncached := run("")
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-started campaign diverges from the one that populated the cache:\n cold=%+v\n warm=%+v", cold, warm)
	}
	if !reflect.DeepEqual(cold, uncached) {
		t.Errorf("cached campaign diverges from the uncached one:\n cached=%+v\n uncached=%+v", cold, uncached)
	}
}
