package experiments

import (
	"fmt"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/interference"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// LargeScaleOptions parameterise the Figure 12 simulation study: 150 nodes
// in a 300 m x 300 m field with five Cooja-style disturbers.
type LargeScaleOptions struct {
	Nodes          int
	AreaM          float64
	Disturbers     int
	FlowSets       int
	FlowsPerSet    int
	PacketsPerFlow int
	Seed           int64
	// Parallel bounds the campaign worker pool; 0 uses the process-wide
	// default (GOMAXPROCS or the -parallel flag).
	Parallel int
}

// DefaultLargeScaleOptions mirrors the paper's setup with an
// interactive-sized flow-set count (paper: 300 flow sets).
func DefaultLargeScaleOptions() LargeScaleOptions {
	return LargeScaleOptions{
		Nodes:          150,
		AreaM:          300,
		Disturbers:     5,
		FlowSets:       10,
		FlowsPerSet:    20,
		PacketsPerFlow: 12,
		Seed:           7,
	}
}

// RunFig12 reproduces Figure 12: DiGS vs Orchestra at 150-node scale with
// periodic wide-band disturbers (10 s packet period per the paper).
func RunFig12(opts LargeScaleOptions) (*InterferenceResult, error) {
	protos := []Protocol{DiGS, Orchestra}
	rs, err := campaign.Map(campaign.New(opts.Parallel), len(protos),
		func(i int) ([]FlowSetResult, error) {
			r, err := runLargeScale(protos[i], opts)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", protos[i], err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	return &InterferenceResult{DiGS: rs[0], Orchestra: rs[1]}, nil
}

func runLargeScale(proto Protocol, opts LargeScaleOptions) ([]FlowSetResult, error) {
	topo := topology.NewRandom(opts.Nodes, opts.AreaM, opts.AreaM, opts.Seed)
	nw, net, err := buildNetwork(proto, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	if err := convergeFraction(nw, net, 8*time.Minute, 0.98); err != nil {
		return nil, err
	}
	nw.Run(sim.SlotsFor(30 * time.Second))

	// Disturbers: placed at spread-out field devices, toggling on/off
	// every 5 minutes with staggered phases.
	start := nw.ASN()
	for d := 0; d < opts.Disturbers; d++ {
		at := topology.NodeID(topo.NumAPs + 1 + d*(opts.Nodes/opts.Disturbers))
		nw.AddInterferer(&interference.Window{
			Source:   interference.NewCoojaDisturber(topo, at, d),
			StartASN: start,
		})
	}
	nw.Run(sim.SlotsFor(30 * time.Second))

	return runFlowSets(nw, net, FlowSetOptions{
		FlowSets:       opts.FlowSets,
		FlowsPerSet:    opts.FlowsPerSet,
		PacketPeriod:   10 * time.Second,
		PacketsPerFlow: opts.PacketsPerFlow,
		Drain:          20 * time.Second,
		Seed:           opts.Seed,
	})
}

// JoinTimesResult holds Figure 13's joining-time samples per protocol.
type JoinTimesResult struct {
	DiGS      []time.Duration
	Orchestra []time.Duration
}

// RunFig13 reproduces Figure 13: the time each of Testbed A's field
// devices needs to synchronise and select its preferred parent(s), under
// both stacks, from a cold start. The two protocol runs execute on the
// process-wide campaign pool.
func RunFig13(seed int64) (*JoinTimesResult, error) {
	protos := []Protocol{DiGS, Orchestra}
	rs, err := campaign.Map(campaign.New(0), len(protos),
		func(i int) ([]time.Duration, error) {
			return runJoinTimes(protos[i], seed)
		})
	if err != nil {
		return nil, err
	}
	return &JoinTimesResult{DiGS: rs[0], Orchestra: rs[1]}, nil
}

func runJoinTimes(proto Protocol, seed int64) ([]time.Duration, error) {
	topo := testbedATopo()
	nw, net, err := buildNetwork(proto, topo, seed)
	if err != nil {
		return nil, err
	}
	if err := converge(nw, net, 300*time.Second); err != nil {
		return nil, fmt.Errorf("%v: %w", proto, err)
	}
	var times []time.Duration
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		at, ok := net.JoinTime(i)
		if !ok {
			return nil, fmt.Errorf("%v: node %d joined without a join time", proto, i)
		}
		times = append(times, sim.TimeAt(at))
	}
	return times, nil
}
