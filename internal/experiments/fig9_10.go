package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/chaos"
	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/interference"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/orchestra"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/topology"
)

func testbedATopo() *topology.Topology { return topology.TestbedA() }
func testbedBTopo() *topology.Topology { return topology.TestbedB() }

// InterferenceOptions parameterise the Figure 9 / Figure 10 campaigns:
// DiGS vs Orchestra under WiFi jamming.
type InterferenceOptions struct {
	// Testbed selects "A" (Figure 9) or "B" (Figure 10).
	Testbed string
	// FlowSets per protocol (paper: 300 on A, 220 on B).
	FlowSets int
	// FlowsPerSet (paper: 8 on A, 6 on B).
	FlowsPerSet int
	// PacketsPerFlow per flow set window.
	PacketsPerFlow int
	Seed           int64

	// DiGSConfig overrides the DiGS stack configuration (ablation
	// studies); nil uses the default.
	DiGSConfig *core.Config

	// Parallel bounds the campaign worker pool; 0 uses the process-wide
	// default (GOMAXPROCS or the -parallel flag).
	Parallel int

	// CacheDir names a snapshot cache directory (see internal/snapshot):
	// the converge + settle phase restores from it when a matching
	// snapshot exists and populates it when not, so repeated campaigns
	// (figure re-runs, ablation sweeps) pay network formation once.
	// Empty disables caching. Results are bit-identical either way.
	CacheDir string
}

// DefaultInterferenceOptions returns a campaign sized for interactive use;
// raise FlowSets to the paper's 300/220 for full fidelity.
func DefaultInterferenceOptions(testbed string) InterferenceOptions {
	opts := InterferenceOptions{
		Testbed:        testbed,
		FlowSets:       30,
		FlowsPerSet:    8,
		PacketsPerFlow: 12,
		Seed:           1,
	}
	if testbed == "B" {
		opts.FlowsPerSet = 6
	}
	return opts
}

// InterferenceResult holds both protocols' flow-set series.
type InterferenceResult struct {
	DiGS      []FlowSetResult
	Orchestra []FlowSetResult
}

// RunInterference reproduces Figure 9 (Testbed A) or Figure 10 (Testbed
// B): both stacks run the same flow-set campaign under three WiFi jammers
// at the Figure 8 positions.
func RunInterference(opts InterferenceOptions) (*InterferenceResult, error) {
	// The two protocol campaigns share nothing (each builds its own
	// topology, network and RNG), so they run as two pool jobs.
	protos := []Protocol{DiGS, Orchestra}
	rs, err := campaign.Map(campaign.New(opts.Parallel), len(protos),
		func(i int) ([]FlowSetResult, error) {
			r, err := runInterferenceCampaign(protos[i], opts)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", protos[i], err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	return &InterferenceResult{DiGS: rs[0], Orchestra: rs[1]}, nil
}

// RunInterferenceSingle runs one protocol's interference campaign alone
// (used by the ablation benchmarks, which vary the DiGS configuration).
func RunInterferenceSingle(proto Protocol, opts InterferenceOptions) ([]FlowSetResult, error) {
	return runInterferenceCampaign(proto, opts)
}

func runInterferenceCampaign(proto Protocol, opts InterferenceOptions) ([]FlowSetResult, error) {
	topo := testbedATopo()
	if opts.Testbed == "B" {
		topo = testbedBTopo()
	}
	nw := sim.NewNetwork(topo, opts.Seed)
	var net stackNet
	var cfgHash uint64
	switch {
	case proto == DiGS:
		cfg := core.DefaultConfig(topo.NumAPs)
		macCfg := mac.DefaultConfig()
		if opts.DiGSConfig != nil {
			cfg = *opts.DiGSConfig
		} else {
			// Equal-time retry persistence: see buildNetwork.
			macCfg.MaxTxPerPacket *= 3
		}
		cn, err := core.Build(nw, cfg, macCfg, opts.Seed)
		if err != nil {
			return nil, err
		}
		net, cfgHash = digsNet{cn}, snapshot.HashConfig(cfg, macCfg)
	case proto == Orchestra:
		cfg, macCfg := orchestra.DefaultConfig(), mac.DefaultConfig()
		on, err := orchestra.Build(nw, cfg, macCfg, opts.Seed)
		if err != nil {
			return nil, err
		}
		net, cfgHash = orchNet{on}, snapshot.HashConfig(cfg, macCfg)
	default:
		return nil, fmt.Errorf("experiments: unknown protocol %d", proto)
	}
	if err := warmConverge(opts.CacheDir, nw, net, opts.Seed, cfgHash, 30*time.Second); err != nil {
		return nil, err
	}

	// Jammers on for the whole measurement campaign — the Figure 8
	// scenario, expressed as a chaos plan: a WiFi jammer at each suggested
	// position plus the crash of the mote running it (JamLab repurposes
	// the mote, so it stops participating in the network). The nil emit
	// chain keeps the fault engine silent here; digs-chaos runs the same
	// plan with full recovery telemetry.
	if _, err := chaos.Apply(nw, chaos.Fig8JammerPlan(topo, opts.Seed), nil, chaos.Hooks{}); err != nil {
		return nil, err
	}
	// Let the stacks reach steady state under the new interference before
	// measuring, with unmeasured priming traffic flowing: link estimators
	// learn from data transmissions, so an idle settling period would
	// leave the pre-jam routes in place and bill the whole adaptation to
	// the first measured flow set. (On the physical testbeds the flows
	// run continuously.)
	primeRng := rand.New(rand.NewSource(opts.Seed*131 + 3))
	for round := 0; round < 3; round++ {
		prime, err := flows.RandomSet(topo, opts.FlowsPerSet, 5*time.Second, primeRng,
			topo.SuggestedJammers...)
		if err != nil {
			return nil, err
		}
		seqBase := uint16(50000 + round*100)
		flows.Schedule(nw, prime, 14, func(f flows.Flow, seq uint16, asn sim.ASN) {
			_ = net.MACNode(int(f.Source)).InjectData(&sim.Frame{
				Origin: f.Source, FlowID: f.ID, Seq: seqBase + seq, BornASN: asn,
			})
		})
		nw.Run(sim.SlotsFor(80 * time.Second))
	}
	// Drain priming residue before the first measured set.
	nw.RunUntil(sim.SlotsFor(2*time.Minute), func() bool {
		for i := 1; i <= topo.N(); i++ {
			if net.MACNode(i).QueueLen() > 0 {
				return false
			}
		}
		return true
	})

	return runFlowSets(nw, net, FlowSetOptions{
		FlowSets:       opts.FlowSets,
		FlowsPerSet:    opts.FlowsPerSet,
		PacketPeriod:   5 * time.Second,
		PacketsPerFlow: opts.PacketsPerFlow,
		Drain:          15 * time.Second,
		Seed:           opts.Seed,
		ExcludeSources: topo.SuggestedJammers,
	})
}

// MicrobenchResult is Figure 9(f) / 11(b): which packet sequence numbers
// of each flow arrived around a disturbance.
type MicrobenchResult struct {
	// Delivered[flowIndex][seq] for seq in [FromSeq, ToSeq].
	Delivered map[uint16]map[uint16]bool
	FromSeq   uint16
	ToSeq     uint16
}

// RunFig9f reproduces the Figure 9(f) micro-benchmark: 8 flows sending
// continuously; a jammer burst hits while packets 74..84 are in the air;
// the result records which of those packets each flow delivered.
func RunFig9f(proto Protocol, seed int64) (*MicrobenchResult, error) {
	topo := testbedATopo()
	nw, net, err := buildNetwork(proto, topo, seed)
	if err != nil {
		return nil, err
	}
	if err := converge(nw, net, 240*time.Second); err != nil {
		return nil, err
	}
	nw.Run(sim.SlotsFor(30 * time.Second))

	const period = 5 * time.Second
	col := metrics.NewCollector()
	net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
	fset := flows.FixedSet(topo.SuggestedSources, period)
	const totalPackets = 90
	base := nw.ASN()
	flows.Schedule(nw, fset, totalPackets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		col.Sent(f.ID, seq, asn)
		_ = net.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})

	// Heavy jammer burst while packets ~75..81 are generated: each jammer
	// position radiates on two WiFi channels at once (a saturated
	// backhaul), which is what makes the baseline lose packets outright.
	burstStart := base + sim.SlotsFor(period)*74
	burstStop := base + sim.SlotsFor(period)*79
	for j, at := range topo.SuggestedJammers {
		for k, wifiCh := range []int{wifiChannelFor(j), wifiChannelFor(j + 1)} {
			nw.AddInterferer(&interference.Window{
				Source:   interference.NewWiFiJammer(topo, at, wifiCh, seed+int64(j*2+k)),
				StartASN: burstStart,
				StopASN:  burstStop,
			})
		}
	}

	nw.Run(sim.SlotsFor(period*totalPackets + 20*time.Second))
	net.OnDeliver(nil)

	out := &MicrobenchResult{
		Delivered: make(map[uint16]map[uint16]bool, len(fset)),
		FromSeq:   74,
		ToSeq:     84,
	}
	for _, f := range fset {
		seqs := col.DeliveredSeqs(f.ID)
		window := make(map[uint16]bool)
		for s := out.FromSeq; s <= out.ToSeq; s++ {
			window[s] = seqs[s]
		}
		out.Delivered[f.ID] = window
	}
	return out, nil
}
