// Package experiments reproduces the paper's evaluation: one runner per
// figure of Section VII (plus the Figure 3/4/5 empirical study of Section
// IV). Each runner builds the relevant topology, boots DiGS and/or the
// Orchestra baseline on the shared simulator, applies the figure's
// interference or failure scenario, and returns the series the figure
// plots.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/orchestra"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Protocol selects the stack under test.
type Protocol int

// Protocols.
const (
	// DiGS is the paper's contribution.
	DiGS Protocol = iota + 1
	// Orchestra is the RPL + Orchestra baseline.
	Orchestra
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case DiGS:
		return "DiGS"
	case Orchestra:
		return "Orchestra"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// stackNet is the protocol-independent view the runners need. Prober and
// Healer are promoted from the embedded stack networks, so the invariant
// monitor can ride any of them.
type stackNet interface {
	JoinedCount() int
	OnDeliver(fn func(sim.ASN, *sim.Frame))
	SetTracer(t telemetry.Tracer)
	MACNode(i int) *mac.Node
	JoinTime(i int) (sim.ASN, bool)
	ParentChangesTotal() int64
	ParentChangesOf(ids []topology.NodeID) int64
	Prober(nw *sim.Network) invariant.Prober
	Healer() func(id topology.NodeID, asn sim.ASN)
}

type digsNet struct{ *core.Network }

func (d digsNet) MACNode(i int) *mac.Node { return d.Nodes[i] }
func (d digsNet) JoinTime(i int) (sim.ASN, bool) {
	return d.Stacks[i].Router().FirstParentAt()
}
func (d digsNet) ParentChangesTotal() int64 {
	var total int64
	for _, s := range d.Stacks[1:] {
		total += s.Router().ParentChanges()
	}
	return total
}

func (d digsNet) ParentChangesOf(ids []topology.NodeID) int64 {
	var total int64
	for _, id := range ids {
		total += d.Stacks[id].Router().ParentChanges()
	}
	return total
}

type orchNet struct{ *orchestra.Network }

func (o orchNet) MACNode(i int) *mac.Node { return o.Nodes[i] }
func (o orchNet) JoinTime(i int) (sim.ASN, bool) {
	return o.Stacks[i].Router().FirstParentAt()
}
func (o orchNet) ParentChangesTotal() int64 {
	var total int64
	for _, s := range o.Stacks[1:] {
		total += s.Router().ParentChanges()
	}
	return total
}

func (o orchNet) ParentChangesOf(ids []topology.NodeID) int64 {
	var total int64
	for _, id := range ids {
		total += o.Stacks[id].Router().ParentChanges()
	}
	return total
}

// buildNetwork attaches the chosen protocol stack to a fresh network.
func buildNetwork(p Protocol, topo *topology.Topology, seed int64) (*sim.Network, stackNet, error) {
	nw := sim.NewNetwork(topo, seed)
	switch p {
	case DiGS:
		// DiGS schedules three attempts per slotframe where Orchestra has
		// one, so equal-time retry persistence means a 3x attempt budget.
		macCfg := mac.DefaultConfig()
		macCfg.MaxTxPerPacket *= 3
		net, err := core.Build(nw, core.DefaultConfig(topo.NumAPs), macCfg, seed)
		if err != nil {
			return nil, nil, err
		}
		return nw, digsNet{net}, nil
	case Orchestra:
		net, err := orchestra.Build(nw, orchestra.DefaultConfig(), mac.DefaultConfig(), seed)
		if err != nil {
			return nil, nil, err
		}
		return nw, orchNet{net}, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown protocol %d", p)
	}
}

// converge runs the network until every node has joined (or the budget
// runs out). It returns an error when convergence fails: the experiment
// would otherwise measure a half-formed network.
func converge(nw *sim.Network, net stackNet, budget time.Duration) error {
	return convergeFraction(nw, net, budget, 1.0)
}

// convergeFraction accepts partial convergence: at least the given
// fraction of nodes joined (large sparse deployments can have corner
// stragglers that take tens of minutes, just as physical ones do).
func convergeFraction(nw *sim.Network, net stackNet, budget time.Duration, frac float64) error {
	topo := nw.Topology()
	want := int(math.Ceil(frac * float64(topo.N())))
	if _, ok := nw.RunUntil(sim.SlotsFor(budget), func() bool {
		return net.JoinedCount() >= want
	}); !ok {
		return fmt.Errorf("experiments: only %d/%d nodes joined within %v (want %d)",
			net.JoinedCount(), topo.N(), budget, want)
	}
	return nil
}

// warmConverge brings a freshly built, never-stepped network to the
// converged + settled state a measurement campaign starts from. With a
// cache directory it restores a matching snapshot (see internal/snapshot)
// instead of re-running formation, storing one on miss; continuing from
// the restored state is bit-identical to having formed inline, so cached
// and uncached campaigns produce the same figures.
func warmConverge(cacheDir string, nw *sim.Network, net stackNet, seed int64,
	cfgHash uint64, settle time.Duration) error {
	form := func() error {
		if err := converge(nw, net, 240*time.Second); err != nil {
			return err
		}
		nw.Run(sim.SlotsFor(settle))
		return nil
	}
	var take func(snapshot.Meta) (*snapshot.Snapshot, error)
	var restore func(*snapshot.Snapshot) error
	var proto string
	switch n := net.(type) {
	case digsNet:
		proto = snapshot.ProtocolDiGS
		take = func(m snapshot.Meta) (*snapshot.Snapshot, error) { return snapshot.TakeDiGS(m, nw, n.Network) }
		restore = func(s *snapshot.Snapshot) error { return s.RestoreDiGS(nw, n.Network) }
	case orchNet:
		proto = snapshot.ProtocolOrchestra
		take = func(m snapshot.Meta) (*snapshot.Snapshot, error) { return snapshot.TakeOrchestra(m, nw, n.Network) }
		restore = func(s *snapshot.Snapshot) error { return s.RestoreOrchestra(nw, n.Network) }
	}
	if cacheDir == "" || take == nil {
		return form()
	}
	cache := &snapshot.Cache{Dir: cacheDir}
	key := snapshot.Key{
		Topology:   nw.Topology().Name,
		Protocol:   proto,
		Seed:       seed,
		ConfigHash: cfgHash,
		Label:      fmt.Sprintf("formed+%ds", int(settle.Seconds())),
	}
	snap, err := cache.Load(key)
	if err != nil {
		return err
	}
	if snap != nil {
		return restore(snap)
	}
	if err := form(); err != nil {
		return err
	}
	snap, err = take(snapshot.Meta{
		Topology: key.Topology, Seed: seed, ConfigHash: cfgHash, Label: key.Label,
	})
	if err != nil {
		return err
	}
	return cache.Store(key, snap)
}

// netStats sums MAC counters across all nodes.
type netStats struct {
	energyJ   float64
	radioOn   time.Duration
	delivered int64
}

func statsSnapshot(net stackNet, n int) netStats {
	var s netStats
	for i := 1; i <= n; i++ {
		st := net.MACNode(i).Stats()
		s.energyJ += st.EnergyJoules
		s.radioOn += st.RadioOnTime
		s.delivered += st.SinkDelivered
	}
	return s
}

// FlowSetResult is one flow set's measurement (one sample of the paper's
// CDFs).
type FlowSetResult struct {
	PDR              float64
	Latencies        []time.Duration
	PowerPerPacketMW float64
	DutyPerPacketPct float64
	DeliveredPackets int
	GeneratedPackets int
}

// FlowSetOptions parameterise a flow-set measurement campaign.
type FlowSetOptions struct {
	FlowSets     int
	FlowsPerSet  int
	PacketPeriod time.Duration
	// PacketsPerFlow per flow set window.
	PacketsPerFlow int
	// Drain is extra time after the last generation for in-flight packets.
	Drain time.Duration
	Seed  int64
	// FixedSources, when set, uses these sources for every flow set
	// instead of random draws.
	FixedSources []topology.NodeID
	// ExcludeSources are never drawn as random sources (e.g. motes
	// repurposed as jammers).
	ExcludeSources []topology.NodeID
}

// runFlowSets runs a sequence of flow sets on an already-converged
// network, one after another (the network stays up, as a real deployment
// would), and returns one result per flow set.
func runFlowSets(nw *sim.Network, net stackNet, opts FlowSetOptions) ([]FlowSetResult, error) {
	topo := nw.Topology()
	rng := rand.New(rand.NewSource(opts.Seed*31 + 7))
	results := make([]FlowSetResult, 0, opts.FlowSets)

	for set := 0; set < opts.FlowSets; set++ {
		var fset []flows.Flow
		if opts.FixedSources != nil {
			fset = flows.FixedSet(opts.FixedSources, opts.PacketPeriod)
		} else {
			var err error
			fset, err = flows.RandomSet(topo, opts.FlowsPerSet, opts.PacketPeriod, rng,
				opts.ExcludeSources...)
			if err != nil {
				return nil, err
			}
		}

		col := metrics.NewCollector()
		net.OnDeliver(func(asn sim.ASN, f *sim.Frame) {
			col.Delivered(f.FlowID, f.Seq, asn)
		})
		// Sequence numbers must be unique across windows: the MAC's
		// duplicate suppression remembers (origin, flow, seq) end-to-end.
		seqBase := uint16(set * opts.PacketsPerFlow)
		flows.Schedule(nw, fset, opts.PacketsPerFlow, func(f flows.Flow, seq uint16, asn sim.ASN) {
			seq += seqBase
			col.Sent(f.ID, seq, asn)
			_ = net.MACNode(int(f.Source)).InjectData(&sim.Frame{
				Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
			})
		})

		before := statsSnapshot(net, topo.N())
		window := opts.PacketPeriod*time.Duration(opts.PacketsPerFlow) + opts.Drain
		startASN := nw.ASN()
		nw.Run(sim.SlotsFor(window))
		after := statsSnapshot(net, topo.N())
		elapsed := sim.TimeAt(nw.ASN() - startASN)
		net.OnDeliver(nil)

		// Quiesce: drain every forwarding queue before the next flow set
		// so one set's congestion does not bleed into the next (the
		// paper's flow sets are independent measurements).
		nw.RunUntil(sim.SlotsFor(3*time.Minute), func() bool {
			for i := 1; i <= topo.N(); i++ {
				if net.MACNode(i).QueueLen() > 0 {
					return false
				}
			}
			return true
		})
		results = append(results, FlowSetResult{
			PDR:              col.PDR(),
			Latencies:        col.Latencies(),
			PowerPerPacketMW: metrics.PowerPerPacketMW(after.energyJ-before.energyJ, elapsed, col.DeliveredCount()),
			DutyPerPacketPct: metrics.DutyCyclePerPacket(after.radioOn-before.radioOn, topo.N(), elapsed, col.DeliveredCount()),
			DeliveredPackets: col.DeliveredCount(),
			GeneratedPackets: col.SentCount(),
		})
	}
	return results, nil
}

// PDRs extracts the per-flow-set PDR series.
func PDRs(rs []FlowSetResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.PDR
	}
	return out
}

// AllLatenciesMs pools every packet latency across flow sets, in
// milliseconds.
func AllLatenciesMs(rs []FlowSetResult) []float64 {
	var out []float64
	for _, r := range rs {
		out = append(out, metrics.DurationsToMillis(r.Latencies)...)
	}
	return out
}

// PowersPerPacket extracts the per-flow-set power-per-packet series.
func PowersPerPacket(rs []FlowSetResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.PowerPerPacketMW
	}
	return out
}

// DutiesPerPacket extracts the per-flow-set duty-cycle-per-packet series.
func DutiesPerPacket(rs []FlowSetResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.DutyPerPacketPct
	}
	return out
}
