package experiments

import (
	"fmt"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/orchestra"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/topology"
)

// FailureOptions parameterise the Figure 11 node-failure study.
type FailureOptions struct {
	// Victims is how many router nodes are killed in turn (paper: 4).
	Victims int
	// Repetitions of the whole experiment (paper: 34).
	Repetitions int
	Seed        int64
	// DiGSConfig overrides the DiGS stack configuration (ablations).
	DiGSConfig *core.Config
	// Parallel bounds the campaign worker pool; 0 uses the process-wide
	// default (GOMAXPROCS or the -parallel flag).
	Parallel int

	// CacheDir names a snapshot cache directory; see
	// InterferenceOptions.CacheDir.
	CacheDir string
}

// DefaultFailureOptions sizes the campaign for interactive use; raise
// Repetitions to the paper's 34 for full fidelity.
func DefaultFailureOptions() FailureOptions {
	return FailureOptions{Victims: 4, Repetitions: 4, Seed: 1}
}

// FailureResult is one protocol's node-failure outcome.
type FailureResult struct {
	// FlowPDRs has one entry per (repetition x victim x flow): the flow's
	// delivery rate while that victim was down (Figure 11(a) samples).
	FlowPDRs []float64
	// DisconnectedFlows counts flows with zero deliveries during a
	// failure window.
	DisconnectedFlows int
	// TotalFlows counts measured (flow, victim) pairs.
	TotalFlows int
	// PowerPerPacket samples (Figure 11(c)).
	PowerPerPacket []float64
}

// RunFig11 reproduces Figure 11(a)/(c): kill busy router nodes in turn and
// measure each data flow's PDR and the network's power per received packet
// while the victim is down, for both protocols.
func RunFig11(opts FailureOptions) (digs, orch *FailureResult, err error) {
	// One flat job list across both protocols keeps a single bounded pool
	// busy instead of two half-idle nested ones.
	protos := []Protocol{DiGS, Orchestra}
	reps := opts.Repetitions
	parts, err := campaign.Map(campaign.New(opts.Parallel), len(protos)*reps,
		func(i int) (*FailureResult, error) {
			seed := opts.Seed*997 + int64(i%reps)
			return runFailureOnceCfg(protos[i/reps], seed, opts.Victims, opts.DiGSConfig, opts.CacheDir)
		})
	if err != nil {
		return nil, nil, err
	}
	digs = mergeFailureResults(parts[:reps])
	orch = mergeFailureResults(parts[reps:])
	return digs, orch, nil
}

func runFailureCampaign(proto Protocol, opts FailureOptions) (*FailureResult, error) {
	parts, err := campaign.Map(campaign.New(opts.Parallel), opts.Repetitions,
		func(rep int) (*FailureResult, error) {
			seed := opts.Seed*997 + int64(rep)
			return runFailureOnceCfg(proto, seed, opts.Victims, opts.DiGSConfig, opts.CacheDir)
		})
	if err != nil {
		return nil, err
	}
	return mergeFailureResults(parts), nil
}

// mergeFailureResults concatenates per-repetition results in repetition
// order, reproducing what the historical sequential loop accumulated.
func mergeFailureResults(parts []*FailureResult) *FailureResult {
	out := &FailureResult{}
	for _, p := range parts {
		out.FlowPDRs = append(out.FlowPDRs, p.FlowPDRs...)
		out.DisconnectedFlows += p.DisconnectedFlows
		out.TotalFlows += p.TotalFlows
		out.PowerPerPacket = append(out.PowerPerPacket, p.PowerPerPacket...)
	}
	return out
}

// RunFailureSingle runs one protocol's failure campaign alone (ablations).
func RunFailureSingle(proto Protocol, opts FailureOptions) (*FailureResult, error) {
	return runFailureCampaign(proto, opts)
}

// runFailureOnceCfg runs one repetition and returns its partial result.
func runFailureOnceCfg(proto Protocol, seed int64, victims int,
	digsCfg *core.Config, cacheDir string) (*FailureResult, error) {
	out := &FailureResult{}
	topo := testbedATopo()
	nw := sim.NewNetwork(topo, seed)
	var net stackNet
	var cfgHash uint64
	switch {
	case proto == DiGS:
		cfg := core.DefaultConfig(topo.NumAPs)
		macCfg := mac.DefaultConfig()
		if digsCfg != nil {
			cfg = *digsCfg
		} else {
			// Equal-time retry persistence: see buildNetwork.
			macCfg.MaxTxPerPacket *= 3
		}
		cn, err := core.Build(nw, cfg, macCfg, seed)
		if err != nil {
			return nil, err
		}
		net, cfgHash = digsNet{cn}, snapshot.HashConfig(cfg, macCfg)
	case proto == Orchestra:
		cfg, macCfg := orchestra.DefaultConfig(), mac.DefaultConfig()
		on, err := orchestra.Build(nw, cfg, macCfg, seed)
		if err != nil {
			return nil, err
		}
		net, cfgHash = orchNet{on}, snapshot.HashConfig(cfg, macCfg)
	default:
		return nil, fmt.Errorf("experiments: unknown protocol %d", proto)
	}
	if err := warmConverge(cacheDir, nw, net, seed, cfgHash, 60*time.Second); err != nil {
		return nil, err
	}

	fset := flows.FixedSet(topo.SuggestedSources, 5*time.Second)
	sources := map[topology.NodeID]bool{}
	for _, f := range fset {
		sources[f.Source] = true
	}

	for v := 0; v < victims; v++ {
		// Priming round before each kill: run unmeasured traffic and use
		// the forwarding-count deltas to find the router currently
		// carrying the most flow traffic (lifetime counters go stale once
		// earlier victims reshape the graph).
		fwdBefore := forwardedCounts(net, topo.N())
		primeBase := uint16(50000 + v*100)
		flows.Schedule(nw, fset, 6, func(f flows.Flow, seq uint16, asn sim.ASN) {
			_ = net.MACNode(int(f.Source)).InjectData(&sim.Frame{
				Origin: f.Source, FlowID: f.ID, Seq: primeBase + seq, BornASN: asn,
			})
		})
		nw.Run(sim.SlotsFor(45 * time.Second))
		victim := pickVictimByDelta(nw, net, sources, fwdBefore)
		if victim == 0 {
			break // no further field-device routers to kill
		}
		nw.Fail(victim)

		col := metrics.NewCollector()
		net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
		const packets = 12
		// Unique sequence range per victim window (duplicate suppression
		// is end-to-end on (origin, flow, seq)).
		seqBase := uint16((v + 1) * 100)
		flows.Schedule(nw, fset, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
			seq += seqBase
			col.Sent(f.ID, seq, asn)
			_ = net.MACNode(int(f.Source)).InjectData(&sim.Frame{
				Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
			})
		})
		before := statsSnapshot(net, topo.N())
		start := nw.ASN()
		nw.Run(sim.SlotsFor(5*time.Second*packets + 15*time.Second))
		after := statsSnapshot(net, topo.N())
		net.OnDeliver(nil)

		for _, f := range fset {
			pdr := col.FlowPDR(f.ID)
			out.FlowPDRs = append(out.FlowPDRs, pdr)
			out.TotalFlows++
			if pdr == 0 {
				out.DisconnectedFlows++
			}
		}
		out.PowerPerPacket = append(out.PowerPerPacket, metrics.PowerPerPacketMW(
			after.energyJ-before.energyJ, sim.TimeAt(nw.ASN()-start), col.DeliveredCount()))

		// Failures accumulate ("turning off 4 nodes ... in turn"): the
		// routing graph has to absorb each loss on top of the previous
		// ones, which is what eventually partitions a single-path tree.
	}
	return out, nil
}

// forwardedCounts snapshots every node's lifetime forwarding counter.
func forwardedCounts(net stackNet, n int) []int64 {
	out := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		out[i] = net.MACNode(i).Stats().Forwarded
	}
	return out
}

// pickVictim finds the field device that forwarded the most traffic so far
// (the biggest routing-graph router that is not itself a source).
func pickVictim(nw *sim.Network, net stackNet, sources map[topology.NodeID]bool) topology.NodeID {
	return pickVictimByDelta(nw, net, sources, make([]int64, nw.Topology().N()+1))
}

// pickVictimByDelta finds the field device whose forwarding counter grew
// the most since the snapshot.
func pickVictimByDelta(nw *sim.Network, net stackNet, sources map[topology.NodeID]bool,
	before []int64) topology.NodeID {
	topo := nw.Topology()
	var best topology.NodeID
	var bestFwd int64 = -1
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		if sources[id] || nw.Failed(id) {
			continue
		}
		if fwd := net.MACNode(i).Stats().Forwarded - before[i]; fwd > bestFwd {
			best, bestFwd = id, fwd
		}
	}
	if bestFwd <= 0 {
		return 0
	}
	return best
}

// RunFig11b reproduces the Figure 11(b) micro-benchmark: a busy router
// dies while packet 34 is in flight; the result records which of packets
// 30..40 each flow delivered.
func RunFig11b(proto Protocol, seed int64) (*MicrobenchResult, error) {
	topo := testbedATopo()
	nw, net, err := buildNetwork(proto, topo, seed)
	if err != nil {
		return nil, err
	}
	if err := converge(nw, net, 240*time.Second); err != nil {
		return nil, err
	}
	nw.Run(sim.SlotsFor(60 * time.Second))

	const period = 5 * time.Second
	col := metrics.NewCollector()
	net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
	fset := flows.FixedSet(topo.SuggestedSources, period)
	sources := map[topology.NodeID]bool{}
	for _, f := range fset {
		sources[f.Source] = true
	}
	const totalPackets = 45
	base := nw.ASN()
	flows.Schedule(nw, fset, totalPackets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		col.Sent(f.ID, seq, asn)
		_ = net.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})

	// Warm the forwarding statistics on the early packets, then kill the
	// busiest router just before packet 33 is generated.
	nw.At(base+sim.SlotsFor(period)*33-10, func() {
		if v := pickVictim(nw, net, sources); v != 0 {
			nw.Fail(v)
		}
	})

	nw.Run(sim.SlotsFor(period*totalPackets + 20*time.Second))
	net.OnDeliver(nil)

	out := &MicrobenchResult{
		Delivered: make(map[uint16]map[uint16]bool, len(fset)),
		FromSeq:   30,
		ToSeq:     40,
	}
	for _, f := range fset {
		seqs := col.DeliveredSeqs(f.ID)
		window := make(map[uint16]bool)
		for s := out.FromSeq; s <= out.ToSeq; s++ {
			window[s] = seqs[s]
		}
		out.Delivered[f.ID] = window
	}
	return out, nil
}
