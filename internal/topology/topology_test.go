package topology

import (
	"testing"

	"github.com/digs-net/digs/internal/phy"
)

func TestTestbedAStructure(t *testing.T) {
	tb := TestbedA()
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tb.N(); got != 50 {
		t.Fatalf("Testbed A has %d nodes, want 50", got)
	}
	if tb.NumAPs != 2 {
		t.Fatalf("Testbed A has %d APs, want 2", tb.NumAPs)
	}
	if len(tb.SuggestedSources) != 8 {
		t.Fatalf("Testbed A suggests %d sources, want 8", len(tb.SuggestedSources))
	}
	if len(tb.SuggestedJammers) != 3 {
		t.Fatalf("Testbed A suggests %d jammers, want 3", len(tb.SuggestedJammers))
	}
}

func TestTestbedBStructure(t *testing.T) {
	tb := TestbedB()
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tb.N(); got != 44 {
		t.Fatalf("Testbed B has %d nodes, want 44", got)
	}
	floors := map[int]int{}
	for _, n := range tb.Nodes[1:] {
		floors[n.Floor]++
	}
	if len(floors) != 2 {
		t.Fatalf("Testbed B spans %d floors, want 2", len(floors))
	}
	// Figure 8(b) names specific labels for APs, sources and jammers.
	wantLabels := map[int]bool{
		130: true, 128: true, // APs
		144: true, 126: true, 136: true, 142: true, 115: true, 106: true, // sources
		124: true, 141: true, 138: true, // jammers
	}
	for _, n := range tb.Nodes[1:] {
		delete(wantLabels, n.Label)
	}
	if len(wantLabels) != 0 {
		t.Fatalf("Testbed B missing labels from Figure 8(b): %v", wantLabels)
	}
	if len(tb.SuggestedSources) != 6 || len(tb.SuggestedJammers) != 3 {
		t.Fatalf("Testbed B roles: %d sources, %d jammers; want 6, 3",
			len(tb.SuggestedSources), len(tb.SuggestedJammers))
	}
}

func TestHalfTestbedSizes(t *testing.T) {
	if got := HalfTestbedA().N(); got != 20 {
		t.Fatalf("Half Testbed A has %d nodes, want 20", got)
	}
	if got := HalfTestbedB().N(); got != 19 {
		t.Fatalf("Half Testbed B has %d nodes, want 19", got)
	}
	for _, tb := range []*Topology{HalfTestbedA(), HalfTestbedB()} {
		if err := tb.Validate(); err != nil {
			t.Fatalf("%s: %v", tb.Name, err)
		}
	}
}

func TestTestbedsAreConnected(t *testing.T) {
	// Every deployment must let every node reach an AP over usable links,
	// otherwise the routing experiments cannot produce the paper's PDRs.
	for _, tb := range []*Topology{
		TestbedA(), TestbedB(), HalfTestbedA(), HalfTestbedB(),
		NewRandom(150, 300, 300, 7),
	} {
		ok, missing := tb.Connected(0.5)
		if !ok {
			t.Errorf("%s: node %d cannot reach an AP over PRR>=0.5 links", tb.Name, missing)
		}
	}
}

func TestTestbedsAreMultiHop(t *testing.T) {
	// The evaluation depends on genuinely multi-hop meshes: some node must
	// be out of direct radio range of both APs.
	for _, tb := range []*Topology{TestbedA(), TestbedB(), NewRandom(150, 300, 300, 7)} {
		multihop := false
		for i := tb.NumAPs + 1; i <= tb.N(); i++ {
			direct := false
			for _, ap := range tb.APs() {
				if tb.PRR(NodeID(i), ap) >= 0.1 {
					direct = true
					break
				}
			}
			if !direct {
				multihop = true
				break
			}
		}
		if !multihop {
			t.Errorf("%s: every node reaches an AP directly; not a multi-hop mesh", tb.Name)
		}
	}
}

func TestRSSSymmetricAndDeterministic(t *testing.T) {
	a, b := TestbedA(), TestbedA()
	for i := NodeID(1); int(i) <= a.N(); i++ {
		for j := i + 1; int(j) <= a.N(); j++ {
			if a.RSS(i, j) != a.RSS(j, i) {
				t.Fatalf("RSS not symmetric for %d<->%d", i, j)
			}
			if a.RSS(i, j) != b.RSS(i, j) {
				t.Fatalf("RSS not deterministic across instances for %d<->%d", i, j)
			}
		}
	}
}

func TestNeighborsExcludeSelfAndDead(t *testing.T) {
	tb := TestbedA()
	for i := NodeID(1); int(i) <= tb.N(); i++ {
		for _, n := range tb.Neighbors(i) {
			if n == i {
				t.Fatalf("node %d lists itself as neighbour", i)
			}
			if tb.RSS(i, n) < phy.SensitivityDBm {
				t.Fatalf("node %d lists dead link to %d", i, n)
			}
		}
	}
}

func TestSubsetRenumbersAPsFirst(t *testing.T) {
	full := TestbedA()
	sub := Subset(full, "sub", []NodeID{10, 1, 20, 2, 30})
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumAPs != 2 {
		t.Fatalf("subset has %d APs, want 2", sub.NumAPs)
	}
	if !sub.Node(1).IsAP || !sub.Node(2).IsAP || sub.Node(3).IsAP {
		t.Fatal("subset IDs not ordered APs-first")
	}
	if sub.N() != 5 {
		t.Fatalf("subset has %d nodes, want 5", sub.N())
	}
}

func TestRandomTopologyShape(t *testing.T) {
	tb := NewRandom(150, 300, 300, 7)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.N() != 152 {
		t.Fatalf("random topology has %d nodes, want 152 (150 + 2 APs)", tb.N())
	}
	for _, n := range tb.Nodes[1:] {
		if n.X < 0 || n.X > 300 || n.Y < 0 || n.Y > 300 {
			t.Fatalf("node %d placed outside the field: (%.1f, %.1f)", n.ID, n.X, n.Y)
		}
	}
	// Different seeds give different placements.
	other := NewRandom(150, 300, 300, 8)
	same := true
	for i := 3; i <= 20; i++ {
		if tb.Node(NodeID(i)).X != other.Node(NodeID(i)).X {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random topologies with different seeds are identical")
	}
}

func TestCrossFloorLinksAreWeaker(t *testing.T) {
	tb := TestbedB()
	// Pick two nodes stacked near each other on different floors and two
	// nodes the same distance apart on one floor; the cross-floor link must
	// be weaker on average. Use path loss directly to avoid shadowing noise.
	sameFloor := phy.PathLossDB(10, 0)
	crossFloor := phy.PathLossDB(10, 1)
	if crossFloor <= sameFloor {
		t.Fatal("cross-floor path loss not larger than same-floor")
	}
	_ = tb
}
