package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/phy"
)

// Procedural deployment generators for the massive-scale runs. All three
// kinds are deterministic in GenParams (same params, same topology, byte
// for byte), set FastShadow and ForceSparse so a 100k-node deployment never
// allocates the dense matrix, and assign node IDs in spatial scan order —
// floor-major/row-major for the structured kinds, Morton order for the
// random field — so a contiguous ID range is also a spatially compact
// region. The sharded slot engine partitions by contiguous ID range, so
// this ID discipline is what makes those shards spatially coherent.

// GenKind selects a generator family.
type GenKind string

const (
	// GenPlant is a multi-floor process plant: jittered device grids on
	// stacked floor plates, one access point per floor at the riser core.
	GenPlant GenKind = "plant"
	// GenCampus is a campus of single-floor buildings on a street grid,
	// each building a jittered device grid, access points spread across
	// buildings.
	GenCampus GenKind = "campus"
	// GenField is a uniform-density open field with rectangular obstacle
	// exclusion zones and access points clustered at the field centre.
	GenField GenKind = "field"
)

// GenParams parameterises a procedural deployment. Zero values select the
// documented defaults.
type GenParams struct {
	Kind  GenKind
	Nodes int   // field devices (total size is Nodes + APs)
	Seed  int64 // placement + shadowing seed (default 1)

	Floors int // plant only: floor count (0 = one floor per ~2500 devices)
	APs    int // access points (0 = auto per kind)

	// SpacingM is the mean device pitch in metres (default 5, i.e. one
	// device per 25 m^2). With the default -25 dBm radios the mean keep
	// radius is ~15 m, so the default density yields ~25-30 usable
	// neighbours per device.
	SpacingM float64

	TxPowerDBm    float64 // default genTxPowerDBm
	ShadowSigmaDB float64 // default 4 dB (negative disables shadowing)
}

// genTxPowerDBm keeps generated deployments multi-hop at industrial
// density: -25 dBm gives a ~15 m mean keep radius at the default 5 m
// pitch, reproducing the 3+ hop depth of the testbeds at any scale.
const genTxPowerDBm = -25.0

func (p *GenParams) normalise() error {
	if p.Nodes < 1 {
		return fmt.Errorf("generate: need at least one field device, got %d", p.Nodes)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.SpacingM <= 0 {
		p.SpacingM = 5
	}
	if p.TxPowerDBm == 0 {
		p.TxPowerDBm = genTxPowerDBm
	}
	switch {
	case p.ShadowSigmaDB < 0:
		p.ShadowSigmaDB = 0
	case p.ShadowSigmaDB == 0:
		p.ShadowSigmaDB = 4
	}
	switch p.Kind {
	case GenPlant:
		if p.Floors <= 0 {
			p.Floors = (p.Nodes + 2499) / 2500
		}
		if p.APs <= 0 {
			p.APs = p.Floors
			if p.APs < 2 {
				p.APs = 2
			}
		}
	case GenCampus, GenField:
		if p.APs <= 0 {
			p.APs = p.Nodes / 2500
			if p.APs < 2 {
				p.APs = 2
			}
			if p.APs > 8 {
				p.APs = 8
			}
		}
	default:
		return fmt.Errorf("generate: unknown kind %q", p.Kind)
	}
	return nil
}

// Generate builds a procedural deployment. The result is validated,
// sparse-only, and guaranteed connected: a deterministic repair pass
// relocates any device the gateway component cannot reach.
func Generate(p GenParams) (*Topology, error) {
	if err := p.normalise(); err != nil {
		return nil, err
	}
	t := &Topology{
		Name:          fmt.Sprintf("gen-%s-%d-%d", p.Kind, p.Nodes, p.Seed),
		NumAPs:        p.APs,
		TxPowerDBm:    p.TxPowerDBm,
		ShadowSigmaDB: p.ShadowSigmaDB,
		shadowSeed:    p.Seed,
		ForceSparse:   true,
		FastShadow:    true,
	}
	switch p.Kind {
	case GenPlant:
		genPlant(t, p)
	case GenCampus:
		genCampus(t, p)
	case GenField:
		genField(t, p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	repairConnectivity(t, p.Seed)
	// Suggested flow sources and jammers, strided across the field-device
	// ID range: scan-order IDs make an even ID stride an even spatial
	// spread, so the default flow set exercises every region of the
	// deployment.
	count := t.N() - t.NumAPs
	for i := 0; i < 8 && i < count; i++ {
		t.SuggestedSources = append(t.SuggestedSources, NodeID(t.NumAPs+1+i*count/8))
	}
	for i := 0; i < 3 && i*2+1 < count; i++ {
		t.SuggestedJammers = append(t.SuggestedJammers, NodeID(t.NumAPs+1+(2*i+1)*count/6))
	}
	return t, nil
}

// genPlant lays out p.Floors stacked floor plates, each a jittered
// cols x rows grid at the device pitch, with the access points vertically
// stacked at the riser core (AP i serves floor (i-1) mod Floors). IDs run
// floor-major then row-major.
func genPlant(t *Topology, p GenParams) {
	perFloor := (p.Nodes + p.Floors - 1) / p.Floors
	cols := int(math.Ceil(math.Sqrt(float64(perFloor))))
	rows := (perFloor + cols - 1) / cols
	w := float64(cols) * p.SpacingM
	h := float64(rows) * p.SpacingM

	t.Nodes = append(t.Nodes, Node{}) // index 0 unused
	for i := 1; i <= p.APs; i++ {
		floor := (i - 1) % p.Floors
		t.Nodes = append(t.Nodes, Node{
			ID: NodeID(i), IsAP: true, Floor: floor,
			X: w/2 + float64((i-1)/p.Floors)*p.SpacingM,
			Y: h / 2,
		})
	}
	r := rand.New(rand.NewSource(p.Seed))
	id := NodeID(p.APs + 1)
	placed := 0
	for floor := 0; floor < p.Floors && placed < p.Nodes; floor++ {
		for row := 0; row < rows && placed < p.Nodes; row++ {
			for col := 0; col < cols && placed < p.Nodes; col++ {
				t.Nodes = append(t.Nodes, Node{
					ID:    id,
					Floor: floor,
					X:     (float64(col) + 0.1 + 0.8*r.Float64()) * p.SpacingM,
					Y:     (float64(row) + 0.1 + 0.8*r.Float64()) * p.SpacingM,
				})
				id++
				placed++
			}
		}
	}
}

// genCampus arranges square buildings on a street grid. Each building is a
// jittered bSide x bSide device grid; streets add a gap of several device
// pitches, short enough that facing windows still link across. IDs run
// building-major (row-major over the building grid) then row-major within
// each building, and access points sit at the centres of evenly strided
// buildings.
func genCampus(t *Topology, p GenParams) {
	const perBuilding = 400 // 20 x 20 devices, a 100 m plate at default pitch
	nb := (p.Nodes + perBuilding - 1) / perBuilding
	bCols := int(math.Ceil(math.Sqrt(float64(nb))))
	bSide := int(math.Ceil(math.Sqrt(float64(perBuilding))))
	street := 2 * p.SpacingM // narrow enough for building-to-building links
	pitch := float64(bSide)*p.SpacingM + street

	origin := func(b int) (float64, float64) {
		return float64(b%bCols) * pitch, float64(b/bCols) * pitch
	}
	t.Nodes = append(t.Nodes, Node{})
	for i := 1; i <= p.APs; i++ {
		bx, by := origin((i - 1) * nb / p.APs)
		t.Nodes = append(t.Nodes, Node{
			ID: NodeID(i), IsAP: true,
			X: bx + float64(bSide)*p.SpacingM/2,
			Y: by + float64(bSide)*p.SpacingM/2,
		})
	}
	r := rand.New(rand.NewSource(p.Seed))
	id := NodeID(p.APs + 1)
	placed := 0
	for b := 0; b < nb && placed < p.Nodes; b++ {
		bx, by := origin(b)
		for row := 0; row < bSide && placed < p.Nodes; row++ {
			for col := 0; col < bSide && placed < p.Nodes; col++ {
				t.Nodes = append(t.Nodes, Node{
					ID: id,
					X:  bx + (float64(col)+0.1+0.8*r.Float64())*p.SpacingM,
					Y:  by + (float64(row)+0.1+0.8*r.Float64())*p.SpacingM,
				})
				id++
				placed++
			}
		}
	}
}

// genField scatters devices uniformly over a square sized for the target
// density, rejecting positions inside seeded rectangular obstacles
// (equipment pads, ponds). Obstacles are kept narrower than twice the keep
// radius so no single one can sever the field; the repair pass covers
// pathological compositions. IDs are assigned in Morton (Z-curve) order of
// position so contiguous ID ranges stay spatially compact.
func genField(t *Topology, p GenParams) {
	side := math.Sqrt(float64(p.Nodes)) * p.SpacingM
	r := rand.New(rand.NewSource(p.Seed))

	type rect struct{ x0, y0, x1, y1 float64 }
	nObs := p.Nodes / 500
	obstacles := make([]rect, 0, nObs)
	maxDim := 4 * p.SpacingM
	for i := 0; i < nObs; i++ {
		w := (0.5 + r.Float64()) * maxDim / 1.5
		h := (0.5 + r.Float64()) * maxDim / 1.5
		x := r.Float64() * (side - w)
		y := r.Float64() * (side - h)
		obstacles = append(obstacles, rect{x, y, x + w, y + h})
	}
	blocked := func(x, y float64) bool {
		for _, o := range obstacles {
			if x >= o.x0 && x <= o.x1 && y >= o.y0 && y <= o.y1 {
				return true
			}
		}
		return false
	}

	type placed struct {
		x, y   float64
		morton uint64
	}
	pts := make([]placed, 0, p.Nodes)
	for len(pts) < p.Nodes {
		x, y := r.Float64()*side, r.Float64()*side
		if blocked(x, y) {
			continue
		}
		pts = append(pts, placed{x, y, morton(x, y, side)})
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].morton < pts[j].morton })

	t.Nodes = append(t.Nodes, Node{})
	// APs in a tight cluster at the field centre, mirroring the testbeds'
	// co-located access points with overlapping coverage.
	for i := 1; i <= p.APs; i++ {
		ang := 2 * math.Pi * float64(i-1) / float64(p.APs)
		t.Nodes = append(t.Nodes, Node{
			ID: NodeID(i), IsAP: true,
			X: side/2 + p.SpacingM*math.Cos(ang),
			Y: side/2 + p.SpacingM*math.Sin(ang),
		})
	}
	for i, pt := range pts {
		t.Nodes = append(t.Nodes, Node{ID: NodeID(p.APs + 1 + i), X: pt.x, Y: pt.y})
	}
}

// morton interleaves the 16-bit quantised coordinates into a Z-curve key.
func morton(x, y, side float64) uint64 {
	q := func(v float64) uint64 {
		u := uint64(v / side * 65535)
		if u > 65535 {
			u = 65535
		}
		// Spread the 16 bits to even positions.
		u = (u | u<<24) & 0x000000FF000000FF
		u = (u | u<<12) & 0x000F000F000F000F
		u = (u | u<<6) & 0x0303030303030303
		u = (u | u<<3) & 0x1111111111111111
		return u
	}
	return q(x)<<1 | q(y)
}

// repairConnectivity relocates devices the gateway component cannot reach
// (over links with mean RSS at or above sensitivity) next to a reachable
// device. Relocation choices hash off the node ID and round, so the repair
// is deterministic and independent of map iteration or float ordering. A
// well-parameterised deployment needs zero rounds; the loop is the safety
// net that makes the generator's connectivity guarantee unconditional.
func repairConnectivity(t *Topology, seed int64) {
	for round := 0; round < 32; round++ {
		ok, _ := t.Connected(0)
		if ok {
			return
		}
		reach := reachable(t)
		if len(reach) == 0 {
			return // no field device reaches an AP: nothing to anchor to
		}
		moved := false
		for i := t.NumAPs + 1; i <= t.N(); i++ {
			id := NodeID(i)
			if reachContains(reach, id) {
				continue
			}
			h := detrand.Hash3(uint64(seed), uint64(id), uint64(round), 1)
			anchor := t.Nodes[reach[h%uint64(len(reach))]]
			nd := &t.Nodes[id]
			nd.Floor = anchor.Floor
			nd.X = anchor.X + (detrand.Uniform(detrand.Mix(h, 2))-0.5)*4
			nd.Y = anchor.Y + (detrand.Uniform(detrand.Mix(h, 3))-0.5)*4
			moved = true
		}
		if !moved {
			return
		}
		t.sparse = nil // positions changed: rebuild the adjacency
		t.rssCache = nil
	}
}

// reachable returns the IDs (ascending) the APs can reach over links with
// mean RSS at or above the sensitivity floor.
func reachable(t *Topology) []NodeID {
	ids := []NodeID{}
	visited := make([]bool, t.N()+1)
	queue := append([]NodeID{}, t.APs()...)
	for _, ap := range queue {
		visited[ap] = true
	}
	s := t.SparseView()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cols, vals, _ := s.Row(cur)
		for i, b := range cols {
			if !visited[b] && vals[i] >= phy.SensitivityDBm {
				visited[b] = true
				queue = append(queue, b)
			}
		}
	}
	for i := 1; i <= t.N(); i++ {
		if visited[i] {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

func reachContains(sorted []NodeID, id NodeID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= id })
	return i < len(sorted) && sorted[i] == id
}

// ParseGenSpec recognises procedural topology names of the form
// gen-<kind>-<nodes>[-<seed>], e.g. "gen-plant-10000" or
// "gen-field-2000-7". It returns false for names that are not generator
// specs; a malformed spec that starts with "gen-" returns an error.
func ParseGenSpec(name string) (GenParams, bool, error) {
	if !strings.HasPrefix(name, "gen-") {
		return GenParams{}, false, nil
	}
	parts := strings.Split(name, "-")
	if len(parts) < 3 || len(parts) > 4 {
		return GenParams{}, true, fmt.Errorf("topology spec %q: want gen-<kind>-<nodes>[-<seed>]", name)
	}
	p := GenParams{Kind: GenKind(parts[1])}
	switch p.Kind {
	case GenPlant, GenCampus, GenField:
	default:
		return GenParams{}, true, fmt.Errorf("topology spec %q: unknown kind %q", name, parts[1])
	}
	n, err := strconv.Atoi(parts[2])
	if err != nil || n < 1 {
		return GenParams{}, true, fmt.Errorf("topology spec %q: bad node count %q", name, parts[2])
	}
	p.Nodes = n
	if len(parts) == 4 {
		s, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return GenParams{}, true, fmt.Errorf("topology spec %q: bad seed %q", name, parts[3])
		}
		p.Seed = s
	}
	return p, true, nil
}
