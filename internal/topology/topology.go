// Package topology builds the node deployments the paper evaluates on:
// Testbed A (50 TelosB motes on one floor at SUNY Binghamton), Testbed B
// (44 motes spanning two floors at Washington University in St. Louis),
// their half-testbed subsets, and the random 300 m x 300 m placements used
// for the 150-node Cooja study. Positions are synthetic but reproduce the
// hop depth and link-quality mix of the physical deployments; see DESIGN.md
// section 1 for the substitution rationale.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/phy"
)

// NodeID identifies a device. Access points occupy the lowest IDs
// (1..NumAPs) so the autonomous scheduling formulas can derive slots from
// IDs directly.
type NodeID int

// Broadcast is the destination ID for link-layer broadcast frames.
const Broadcast NodeID = 0xFFFF

// Node is one placed device.
type Node struct {
	ID    NodeID
	X, Y  float64 // metres
	Floor int
	IsAP  bool
	// Label is the identifier the paper's figures use for this node (only
	// set for deployments where the paper names specific nodes).
	Label int
}

// Topology is an immutable deployment: node placements plus the radio
// parameters that determine link qualities.
type Topology struct {
	Name       string
	Nodes      []Node // index 0 unused; Nodes[i].ID == i
	NumAPs     int
	TxPowerDBm float64

	// ShadowSigmaDB is the standard deviation of the static per-link
	// log-normal shadowing. Zero disables shadowing (useful for
	// geometry-exact tests); the built-in deployments use 6 dB (typical indoor).
	ShadowSigmaDB float64

	// Suggested roles for experiments, mirroring Figure 8.
	SuggestedSources []NodeID
	SuggestedJammers []NodeID

	// ForceSparse marks deployments that must never materialise the dense
	// (n+1)^2 RSS matrix; RSS/Neighbors/Connected route through the
	// radius-pruned sparse adjacency instead. The procedural generators set
	// it, and any topology above the auto threshold behaves the same.
	ForceSparse bool

	// FastShadow selects the hash-based shadowing derivation instead of the
	// per-pair rand.NewSource one. Both are pure symmetric functions of
	// (shadowSeed, a, b); the hash path avoids allocating a 5 KB generator
	// state per pair, which dominates sparse builds at 10k+ nodes. The two
	// paths draw different values, so it is a property of the topology (set
	// at construction), never toggled later.
	FastShadow bool

	shadowSeed int64
	rssCache   [][]float64
	sparse     *SparseRSS
}

// N returns the number of devices (APs + field devices).
func (t *Topology) N() int { return len(t.Nodes) - 1 }

// APs returns the access point IDs (1..NumAPs).
func (t *Topology) APs() []NodeID {
	out := make([]NodeID, 0, t.NumAPs)
	for i := 1; i <= t.NumAPs; i++ {
		out = append(out, NodeID(i))
	}
	return out
}

// IsAP reports whether id is an access point.
func (t *Topology) IsAP(id NodeID) bool {
	return id >= 1 && int(id) <= t.NumAPs
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.Nodes[id] }

// Distance returns the 2D distance in metres between two nodes.
func (t *Topology) Distance(a, b NodeID) float64 {
	na, nb := t.Nodes[a], t.Nodes[b]
	dx, dy := na.X-nb.X, na.Y-nb.Y
	return math.Hypot(dx, dy)
}

// Floors returns the number of floors separating two nodes.
func (t *Topology) Floors(a, b NodeID) int {
	d := t.Nodes[a].Floor - t.Nodes[b].Floor
	if d < 0 {
		d = -d
	}
	return d
}

// RSS returns the mean received signal strength of the link a->b in dBm,
// including the static per-link shadowing term. Shadowing is symmetric and
// deterministic in the topology seed, so runs are reproducible. On
// sparse-only topologies, pairs pruned from the sparse adjacency report
// -MaxFloat64 (unreceivable) rather than their true sub-floor mean.
func (t *Topology) RSS(a, b NodeID) float64 {
	if t.SparseOnly() {
		v, _ := t.SparseView().RSS(a, b)
		return v
	}
	if t.rssCache == nil {
		t.buildRSSCache()
	}
	return t.rssCache[a][b]
}

// PRR returns the mean packet reception rate of the link a->b.
func (t *Topology) PRR(a, b NodeID) float64 {
	return phy.PRR(t.RSS(a, b))
}

// Neighbors returns every node whose mean RSS from id is above the radio
// sensitivity floor, i.e. the physical neighbourhood.
func (t *Topology) Neighbors(id NodeID) []NodeID {
	if t.SparseOnly() {
		cols, vals, _ := t.SparseView().Row(id)
		var out []NodeID
		for i, b := range cols {
			if vals[i] >= phy.SensitivityDBm {
				out = append(out, b)
			}
		}
		return out
	}
	var out []NodeID
	for i := 1; i <= t.N(); i++ {
		n := NodeID(i)
		if n == id {
			continue
		}
		if t.RSS(id, n) >= phy.SensitivityDBm {
			out = append(out, n)
		}
	}
	return out
}

func (t *Topology) buildRSSCache() {
	n := t.N()
	t.rssCache = make([][]float64, n+1)
	for i := range t.rssCache {
		t.rssCache[i] = make([]float64, n+1)
	}
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			loss := phy.PathLossDB(t.Distance(NodeID(a), NodeID(b)), t.Floors(NodeID(a), NodeID(b)))
			shadow := t.shadowing(a, b)
			rss := phy.RSS(t.TxPowerDBm, loss, shadow)
			t.rssCache[a][b] = rss
			t.rssCache[b][a] = rss
		}
	}
	for a := 0; a <= n; a++ {
		t.rssCache[a][a] = -math.MaxFloat64
	}
}

// shadowing derives a deterministic, symmetric log-normal shadowing term
// for the unordered pair {a, b}.
func (t *Topology) shadowing(a, b int) float64 {
	if t.ShadowSigmaDB == 0 {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	if t.FastShadow {
		h := detrand.Hash3(uint64(t.shadowSeed), uint64(a), uint64(b), 0)
		return detrand.Norm(h) * t.ShadowSigmaDB
	}
	seed := t.shadowSeed*1000003 + int64(a)*8191 + int64(b)
	r := rand.New(rand.NewSource(seed))
	return r.NormFloat64() * t.ShadowSigmaDB
}

// Validate checks structural invariants: contiguous IDs, APs first, and at
// least one AP.
func (t *Topology) Validate() error {
	if t.NumAPs < 1 {
		return fmt.Errorf("topology %q: needs at least one access point", t.Name)
	}
	if len(t.Nodes) < t.NumAPs+2 {
		return fmt.Errorf("topology %q: needs at least one field device", t.Name)
	}
	for i := 1; i < len(t.Nodes); i++ {
		if t.Nodes[i].ID != NodeID(i) {
			return fmt.Errorf("topology %q: node at index %d has ID %d", t.Name, i, t.Nodes[i].ID)
		}
		if t.Nodes[i].IsAP != (i <= t.NumAPs) {
			return fmt.Errorf("topology %q: node %d AP flag inconsistent with NumAPs=%d", t.Name, i, t.NumAPs)
		}
	}
	return nil
}

// Connected reports whether every field device can reach an access point
// over links with PRR of at least minPRR, and returns the first unreachable
// node if not.
func (t *Topology) Connected(minPRR float64) (bool, NodeID) {
	if t.SparseOnly() {
		return t.connectedSparse(minPRR)
	}
	n := t.N()
	visited := make([]bool, n+1)
	queue := make([]NodeID, 0, n)
	for _, ap := range t.APs() {
		visited[ap] = true
		queue = append(queue, ap)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := 1; i <= n; i++ {
			if visited[i] {
				continue
			}
			if t.PRR(cur, NodeID(i)) >= minPRR {
				visited[i] = true
				queue = append(queue, NodeID(i))
			}
		}
	}
	for i := 1; i <= n; i++ {
		if !visited[i] {
			return false, NodeID(i)
		}
	}
	return true, 0
}
