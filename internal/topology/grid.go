package topology

import "math"

// grid is a uniform spatial hash over node positions, the index the sparse
// neighbor builder uses to avoid the O(n^2) all-pairs distance scan. Cells
// are square with side cellM; a node's plausible radio neighbours all live
// in the cells overlapping a circle of the search radius around it, so the
// builder only visits those. Nodes of every floor share one 2D grid: floor
// separation only ever attenuates further, so the same-floor search radius
// is a conservative bound for cross-floor pairs too.
type grid struct {
	cellM      float64
	minX, minY float64
	nx, ny     int
	// cells is a CSR layout: node IDs of cell c are
	// ids[cellStart[c]:cellStart[c+1]], sorted ascending so every walk over
	// the grid visits nodes in a deterministic order.
	cellStart []int32
	ids       []NodeID
}

// buildGrid indexes all nodes of the topology with the given cell size.
func buildGrid(t *Topology, cellM float64) *grid {
	if cellM <= 0 {
		cellM = 1
	}
	g := &grid{cellM: cellM, minX: math.Inf(1), minY: math.Inf(1)}
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	n := t.N()
	for i := 1; i <= n; i++ {
		nd := &t.Nodes[i]
		g.minX = math.Min(g.minX, nd.X)
		g.minY = math.Min(g.minY, nd.Y)
		maxX = math.Max(maxX, nd.X)
		maxY = math.Max(maxY, nd.Y)
	}
	g.nx = int((maxX-g.minX)/cellM) + 1
	g.ny = int((maxY-g.minY)/cellM) + 1

	counts := make([]int32, g.nx*g.ny+1)
	for i := 1; i <= n; i++ {
		counts[g.cellOf(t.Nodes[i].X, t.Nodes[i].Y)+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	g.cellStart = counts
	g.ids = make([]NodeID, n)
	next := make([]int32, g.nx*g.ny)
	copy(next, counts[:len(counts)-1])
	// Node IDs ascend within the fill because the outer loop does; cells
	// end up sorted without an explicit sort pass.
	for i := 1; i <= n; i++ {
		c := g.cellOf(t.Nodes[i].X, t.Nodes[i].Y)
		g.ids[next[c]] = NodeID(i)
		next[c]++
	}
	return g
}

func (g *grid) cellOf(x, y float64) int {
	cx := int((x - g.minX) / g.cellM)
	cy := int((y - g.minY) / g.cellM)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// forNear calls fn for every node within radiusM of (x, y), in ascending
// cell order and ascending ID within each cell (deterministic). The circle
// test itself is left to the caller; forNear over-approximates by visiting
// all cells intersecting the bounding square.
func (g *grid) forNear(x, y, radiusM float64, fn func(id NodeID)) {
	r := int(radiusM/g.cellM) + 1
	cx := int((x - g.minX) / g.cellM)
	cy := int((y - g.minY) / g.cellM)
	for dy := -r; dy <= r; dy++ {
		yy := cy + dy
		if yy < 0 || yy >= g.ny {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			xx := cx + dx
			if xx < 0 || xx >= g.nx {
				continue
			}
			c := yy*g.nx + xx
			for _, id := range g.ids[g.cellStart[c]:g.cellStart[c+1]] {
				fn(id)
			}
		}
	}
}
