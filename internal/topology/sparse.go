package topology

import (
	"math"
	"sort"

	"github.com/digs-net/digs/internal/phy"
)

// DefaultGuardDB is the default guard band below the radio sensitivity
// floor for sparse link pruning: a link is kept only while its mean RSS
// clears SensitivityDBm - guard, so per-reception fast fading (sigma ~2 dB)
// cannot realistically lift a pruned link back above the decode floor.
const DefaultGuardDB = 6.0

// shadowGuardSigmas bounds the search radius: a pair further apart than the
// distance at which even a +4-sigma shadowing draw cannot clear the prune
// floor is never evaluated. Beyond it the per-pair keep probability is
// below ~3e-5 and falls off a cliff with distance.
const shadowGuardSigmas = 4.0

// sparseAutoThreshold is the node count above which Topology.RSS refuses
// to materialise the dense (n+1)^2 matrix and builds the radius-pruned
// sparse structure instead (a 5000-node dense matrix is already 200 MB).
const sparseAutoThreshold = 2048

// SparseRSS is a radius-pruned CSR adjacency over the topology's mean-RSS
// links: for each node, the IDs of its plausible radio neighbours in
// ascending order with the symmetric mean RSS of each link. Links are kept
// exactly when the pair is within the shadowing-guarded search radius and
// its mean RSS (including static shadowing) clears the prune floor
// SensitivityDBm - GuardDB. Directed entries exist for both directions and
// carry equal values; the entry index is the link's identity for overlays
// (the simulator keys its fade deltas on it).
type SparseRSS struct {
	n        int
	GuardDB  float64
	RadiusM  float64
	rowStart []int32
	cols     []NodeID
	rss      []float64
}

// PruneFloorDBm returns the mean-RSS threshold below which links were
// dropped.
func (s *SparseRSS) PruneFloorDBm() float64 { return phy.SensitivityDBm - s.GuardDB }

// Links returns the number of directed link entries (twice the undirected
// link count).
func (s *SparseRSS) Links() int { return len(s.cols) }

// N returns the number of nodes the structure was built over.
func (s *SparseRSS) N() int { return s.n }

// Row returns node a's neighbour IDs (ascending) and the mean RSS of each
// link, plus the base index of the row: entry i of the row has link index
// base+i. The slices alias internal storage and must not be modified.
func (s *SparseRSS) Row(a NodeID) (cols []NodeID, rss []float64, base int) {
	lo, hi := s.rowStart[a], s.rowStart[a+1]
	return s.cols[lo:hi], s.rss[lo:hi], int(lo)
}

// LinkIndex returns the directed entry index of link a->b, or -1 when the
// link was pruned.
func (s *SparseRSS) LinkIndex(a, b NodeID) int {
	if int(a) < 1 || int(a) > s.n {
		return -1
	}
	lo, hi := int(s.rowStart[a]), int(s.rowStart[a+1])
	row := s.cols[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= b })
	if i < len(row) && row[i] == b {
		return lo + i
	}
	return -1
}

// ValueAt returns the mean RSS of the directed entry at the given link
// index (as produced by LinkIndex or a Row base offset).
func (s *SparseRSS) ValueAt(i int) float64 { return s.rss[i] }

// RSS returns the mean RSS of link a->b and whether the link exists.
func (s *SparseRSS) RSS(a, b NodeID) (float64, bool) {
	i := s.LinkIndex(a, b)
	if i < 0 {
		return -math.MaxFloat64, false
	}
	return s.rss[i], true
}

// searchRadiusM computes the conservative candidate radius for the given
// parameters: the distance at which the mean path-loss RSS plus a
// +4-sigma shadowing excursion exactly meets the prune floor.
func searchRadiusM(txPowerDBm, shadowSigmaDB, guardDB float64) float64 {
	budget := txPowerDBm - phy.ReferenceLossDBm +
		shadowGuardSigmas*shadowSigmaDB - (phy.SensitivityDBm - guardDB)
	if budget <= 0 {
		return 1
	}
	return math.Pow(10, budget/(10*phy.PathLossExponent))
}

// BuildSparseRSS constructs the radius-pruned adjacency for the topology.
// The build is deterministic: candidate pairs are enumerated in ascending
// grid-cell and node-ID order, and the shadowing term is the same pure
// function of the pair the dense matrix uses, so every retained link
// carries the bit-identical RSS the dense path would have computed.
func BuildSparseRSS(t *Topology, guardDB float64) *SparseRSS {
	if guardDB <= 0 {
		guardDB = DefaultGuardDB
	}
	n := t.N()
	s := &SparseRSS{
		n:       n,
		GuardDB: guardDB,
		RadiusM: searchRadiusM(t.TxPowerDBm, t.ShadowSigmaDB, guardDB),
	}
	floor := s.PruneFloorDBm()
	// Cell size near the radius keeps the per-node candidate walk at ~9
	// cells; a cap bounds grid memory for tiny dense deployments.
	cell := s.RadiusM
	if cell < 2 {
		cell = 2
	}
	g := buildGrid(t, cell)

	type half struct {
		b   NodeID
		rss float64
	}
	rows := make([][]half, n+1)
	r2 := s.RadiusM * s.RadiusM
	for a := 1; a <= n; a++ {
		na := &t.Nodes[a]
		g.forNear(na.X, na.Y, s.RadiusM, func(b NodeID) {
			if b <= NodeID(a) {
				return // each unordered pair once, from its lower ID
			}
			nb := &t.Nodes[b]
			dx, dy := na.X-nb.X, na.Y-nb.Y
			if dx*dx+dy*dy > r2 {
				return
			}
			// math.Hypot, not Sqrt(dx²+dy²): the dense matrix uses Hypot
			// and the two can differ in the last ULP — retained links must
			// be bit-identical to the dense path.
			loss := phy.PathLossDB(math.Hypot(dx, dy), t.Floors(NodeID(a), b))
			rss := phy.RSS(t.TxPowerDBm, loss, t.shadowing(a, int(b)))
			if rss < floor {
				return
			}
			rows[a] = append(rows[a], half{b: b, rss: rss})
			rows[b] = append(rows[b], half{b: NodeID(a), rss: rss})
		})
	}

	s.rowStart = make([]int32, n+2)
	total := 0
	for a := 1; a <= n; a++ {
		total += len(rows[a])
	}
	s.cols = make([]NodeID, 0, total)
	s.rss = make([]float64, 0, total)
	for a := 1; a <= n; a++ {
		row := rows[a]
		// The forNear walk visits cells in row-major order, not by ID; the
		// per-row sort restores the canonical ascending layout.
		sort.Slice(row, func(i, j int) bool { return row[i].b < row[j].b })
		s.rowStart[a] = int32(len(s.cols))
		for _, h := range row {
			s.cols = append(s.cols, h.b)
			s.rss = append(s.rss, h.rss)
		}
		rows[a] = nil
	}
	s.rowStart[0] = 0
	s.rowStart[n+1] = int32(len(s.cols))
	return s
}

// SparseView returns the topology's radius-pruned adjacency, building and
// caching it on first use with the default guard band. It never
// materialises the dense matrix, so it is the entry point for deployments
// too large for (n+1)^2 storage.
func (t *Topology) SparseView() *SparseRSS {
	if t.sparse == nil {
		t.sparse = BuildSparseRSS(t, DefaultGuardDB)
	}
	return t.sparse
}

// SparseOnly reports whether this topology refuses the dense RSS matrix
// (generated large-scale deployments set ForceSparse; anything above the
// auto threshold qualifies too).
func (t *Topology) SparseOnly() bool {
	return t.ForceSparse || t.N() > sparseAutoThreshold
}

// connectedSparse is the BFS over the sparse adjacency.
func (t *Topology) connectedSparse(minPRR float64) (bool, NodeID) {
	s := t.SparseView()
	n := t.N()
	visited := make([]bool, n+1)
	queue := make([]NodeID, 0, n)
	for _, ap := range t.APs() {
		visited[ap] = true
		queue = append(queue, ap)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cols, vals, _ := s.Row(cur)
		for i, b := range cols {
			if !visited[b] && phy.PRR(vals[i]) >= minPRR {
				visited[b] = true
				queue = append(queue, b)
			}
		}
	}
	for i := 1; i <= n; i++ {
		if !visited[i] {
			return false, NodeID(i)
		}
	}
	return true, 0
}
