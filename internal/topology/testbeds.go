package topology

import (
	"math/rand"
)

// Radio power used on the indoor testbeds. The physical testbeds run the
// CC2420 at reduced power to induce multi-hop routing; -15 dBm reproduces
// the 3-6 hop depth of the paper's deployments on these floor plans.
const testbedTxPowerDBm = -15.0

// TestbedA builds the 50-node single-floor deployment modelled on the
// SUNY Binghamton testbed: a 62 m x 30 m office floor with nodes in a
// jittered grid, two access points near the building core, and the three
// jammer positions used in Section VII-A.
func TestbedA() *Topology {
	const (
		nodes = 50
		seed  = 41
	)
	t := &Topology{
		Name:          "testbed-a",
		NumAPs:        2,
		TxPowerDBm:    testbedTxPowerDBm,
		ShadowSigmaDB: 6.0,
		shadowSeed:    seed,
	}
	r := rand.New(rand.NewSource(seed))
	t.Nodes = append(t.Nodes, Node{}) // index 0 unused

	// Access points near the building core. WirelessHART wires all access
	// points to the gateway, so they sit close together with overlapping
	// coverage: that overlap is what gives first-hop devices a backup
	// route through the second AP.
	t.Nodes = append(t.Nodes,
		Node{ID: 1, X: 28, Y: 13, IsAP: true, Label: 101},
		Node{ID: 2, X: 33, Y: 17, IsAP: true, Label: 102},
	)

	// Field devices: 48 nodes on a jittered 12x4 grid covering the floor.
	id := NodeID(3)
	for col := 0; col < 12; col++ {
		for row := 0; row < 4; row++ {
			x := 2.5 + float64(col)*5.2 + r.Float64()*2.0
			y := 3.0 + float64(row)*8.0 + r.Float64()*2.0
			t.Nodes = append(t.Nodes, Node{ID: id, X: x, Y: y, Label: 100 + int(id)})
			id++
		}
	}

	// Eight flow sources spread across the floor (far corners and mid
	// points), and the three JamLab jammer positions from Figure 8(a).
	t.SuggestedSources = []NodeID{3, 6, 24, 27, 46, 49, 14, 37}
	t.SuggestedJammers = []NodeID{10, 26, 42}
	return t
}

// HalfTestbedA is the 20-node subset of Testbed A used for the scaling
// measurements in Figure 3 (one wing of the floor plus both APs).
func HalfTestbedA() *Topology {
	full := TestbedA()
	ids := []NodeID{1, 2}
	for i := NodeID(3); len(ids) < 20; i++ {
		// Keep the western wing (x < 35 m) so the subset stays connected.
		if full.Node(i).X < 35 {
			ids = append(ids, i)
		}
	}
	sub := Subset(full, "half-testbed-a", ids)
	sub.SuggestedSources = []NodeID{3, 5, 8, 11, 14, 17, 19, 20}
	sub.SuggestedJammers = []NodeID{7, 12}
	return sub
}

// TestbedB builds the 44-node two-floor deployment modelled on the WUSTL
// testbed. Node labels follow Figure 8(b): access points 130 and 128,
// sources 144, 126, 136, 142, 115 and 106, jammers 124, 141 and 138.
func TestbedB() *Topology {
	const seed = 73
	t := &Topology{
		Name:          "testbed-b",
		NumAPs:        2,
		TxPowerDBm:    testbedTxPowerDBm,
		ShadowSigmaDB: 6.0,
		shadowSeed:    seed,
	}
	r := rand.New(rand.NewSource(seed))
	t.Nodes = append(t.Nodes, Node{}) // index 0 unused

	// APs sit at the stairwell core, one per floor, vertically stacked so
	// nodes near the core reach both (the inter-floor link at the core is
	// short enough to serve as a backup path).
	t.Nodes = append(t.Nodes,
		Node{ID: 1, X: 26, Y: 12, Floor: 0, IsAP: true, Label: 130},
		Node{ID: 2, X: 27, Y: 13, Floor: 1, IsAP: true, Label: 128},
	)

	// 21 field devices per floor on a jittered 7x3 grid of a 52 m x 24 m
	// floor plate.
	id := NodeID(3)
	labels := testbedBLabels()
	for floor := 0; floor < 2; floor++ {
		for col := 0; col < 7; col++ {
			for row := 0; row < 3; row++ {
				x := 3.0 + float64(col)*7.4 + r.Float64()*2.2
				y := 3.0 + float64(row)*8.4 + r.Float64()*2.2
				t.Nodes = append(t.Nodes, Node{
					ID: id, X: x, Y: y, Floor: floor, Label: labels[int(id)],
				})
				id++
			}
		}
	}

	t.SuggestedSources = t.byLabels(144, 126, 136, 142, 115, 106)
	t.SuggestedJammers = t.byLabels(124, 141, 138)
	return t
}

// testbedBLabels assigns Figure 8(b) labels to the 44 node IDs. The named
// roles get placements matching their role: sources at floor extremities,
// jammers mid-floor where they cover many links.
func testbedBLabels() map[int]int {
	labels := make(map[int]int, 44)
	// Named nodes: sources far from the APs, jammers central.
	named := map[int]int{
		3: 144, 23: 126, 9: 136, 29: 142, 21: 115, 41: 106, // sources
		12: 124, 32: 141, 17: 138, // jammers
	}
	next := 103
	used := map[int]bool{130: true, 128: true}
	for _, l := range named {
		used[l] = true
	}
	for id := 3; id <= 44; id++ {
		if l, ok := named[id]; ok {
			labels[id] = l
			continue
		}
		for used[next] {
			next++
		}
		labels[id] = next
		used[next] = true
	}
	return labels
}

func (t *Topology) byLabels(labels ...int) []NodeID {
	out := make([]NodeID, 0, len(labels))
	for _, l := range labels {
		for _, n := range t.Nodes[1:] {
			if n.Label == l {
				out = append(out, n.ID)
				break
			}
		}
	}
	return out
}

// HalfTestbedB is the 19-node single-floor subset used in Figure 3.
func HalfTestbedB() *Topology {
	full := TestbedB()
	ids := []NodeID{1, 2}
	for i := NodeID(3); len(ids) < 19 && int(i) <= full.N(); i++ {
		if full.Node(i).Floor == 0 {
			ids = append(ids, i)
		}
	}
	sub := Subset(full, "half-testbed-b", ids)
	sub.SuggestedSources = []NodeID{3, 6, 9, 12, 15, 18}
	sub.SuggestedJammers = []NodeID{8, 13}
	return sub
}

// Subset builds a new topology from a subset of nodes of an existing one,
// renumbering IDs contiguously with access points first. The per-link
// shadowing of retained links is preserved via the parent's seed.
func Subset(parent *Topology, name string, ids []NodeID) *Topology {
	sub := &Topology{
		Name:          name,
		TxPowerDBm:    parent.TxPowerDBm,
		ShadowSigmaDB: parent.ShadowSigmaDB,
		shadowSeed:    parent.shadowSeed,
	}
	sub.Nodes = append(sub.Nodes, Node{})
	// APs first.
	next := NodeID(1)
	for _, pass := range []bool{true, false} {
		for _, id := range ids {
			n := parent.Node(id)
			if n.IsAP != pass {
				continue
			}
			n.ID = next
			sub.Nodes = append(sub.Nodes, n)
			if n.IsAP {
				sub.NumAPs++
			}
			next++
		}
	}
	return sub
}

// NewRandom places n field devices uniformly at random in an areaX x areaY
// metre field with two access points on the field's midline, reproducing
// the 150-node Cooja setup of Section VII-D (300 m x 300 m, full CC2420
// power).
func NewRandom(n int, areaX, areaY float64, seed int64) *Topology {
	t := &Topology{
		Name:          "random",
		NumAPs:        2,
		TxPowerDBm:    0,
		ShadowSigmaDB: 6.0,
		shadowSeed:    seed,
	}
	r := rand.New(rand.NewSource(seed))
	t.Nodes = append(t.Nodes, Node{})
	t.Nodes = append(t.Nodes,
		Node{ID: 1, X: areaX/2 - areaX/15, Y: areaY / 2, IsAP: true},
		Node{ID: 2, X: areaX/2 + areaX/15, Y: areaY / 2, IsAP: true},
	)
	for i := 0; i < n; i++ {
		id := NodeID(3 + i)
		t.Nodes = append(t.Nodes, Node{
			ID: id,
			X:  r.Float64() * areaX,
			Y:  r.Float64() * areaY,
		})
	}
	return t
}
