package topology

import (
	"math"
	"testing"

	"github.com/digs-net/digs/internal/phy"
)

// TestSparseMatchesDenseOnTestbeds proves the prune rule on every real
// deployment: each link the sparse structure keeps carries the
// bit-identical RSS the dense matrix computes, and each link it drops is
// genuinely below the prune floor — so any simulation outcome that
// depends only on at-or-above-sensitivity links is unchanged by going
// sparse.
func TestSparseMatchesDenseOnTestbeds(t *testing.T) {
	for _, topo := range []*Topology{
		TestbedA(), TestbedB(), HalfTestbedA(), HalfTestbedB(),
		NewRandom(150, 300, 300, 7),
	} {
		s := BuildSparseRSS(topo, DefaultGuardDB)
		floor := s.PruneFloorDBm()
		n := topo.N()
		kept, dropped := 0, 0
		for a := 1; a <= n; a++ {
			for b := 1; b <= n; b++ {
				if a == b {
					continue
				}
				dense := topo.RSS(NodeID(a), NodeID(b))
				sparse, ok := s.RSS(NodeID(a), NodeID(b))
				if ok {
					kept++
					if sparse != dense {
						t.Fatalf("%s: link %d->%d sparse %v != dense %v",
							topo.Name, a, b, sparse, dense)
					}
					continue
				}
				dropped++
				if dense >= floor {
					t.Fatalf("%s: link %d->%d pruned but dense RSS %.2f is above the %.2f floor",
						topo.Name, a, b, dense, floor)
				}
			}
		}
		if kept == 0 {
			t.Fatalf("%s: sparse structure kept no links", topo.Name)
		}
		t.Logf("%s: %d directed links kept, %d pruned", topo.Name, kept, dropped)
	}
}

// TestSparseRowsSortedSymmetric checks the structural invariants every
// engine path relies on: rows ascend by neighbour ID, every directed
// entry has its reverse with the identical value, and LinkIndex agrees
// with Row bases.
func TestSparseRowsSortedSymmetric(t *testing.T) {
	topo := NewRandom(200, 350, 350, 11)
	s := topo.SparseView()
	for a := 1; a <= topo.N(); a++ {
		cols, vals, base := s.Row(NodeID(a))
		for i, b := range cols {
			if i > 0 && cols[i-1] >= b {
				t.Fatalf("row %d not strictly ascending at %d", a, i)
			}
			if b == NodeID(a) {
				t.Fatalf("row %d contains self link", a)
			}
			if math.IsNaN(vals[i]) {
				t.Fatalf("link %d->%d has NaN RSS", a, b)
			}
			if got := s.LinkIndex(NodeID(a), b); got != base+i {
				t.Fatalf("LinkIndex(%d,%d) = %d, Row says %d", a, b, got, base+i)
			}
			back, ok := s.RSS(b, NodeID(a))
			if !ok || back != vals[i] {
				t.Fatalf("link %d->%d kept at %.2f but reverse missing or %.2f", a, b, vals[i], back)
			}
		}
	}
}

// TestGeneratedTopologies runs each generator family at a few sizes and
// checks the guarantees the scale runs build on: valid, connected to the
// gateway component, sane degrees, and deterministic (same params, same
// topology).
func TestGeneratedTopologies(t *testing.T) {
	for _, spec := range []GenParams{
		{Kind: GenPlant, Nodes: 500, Seed: 3},
		{Kind: GenPlant, Nodes: 5000, Seed: 1},
		{Kind: GenCampus, Nodes: 900, Seed: 5},
		{Kind: GenField, Nodes: 800, Seed: 2},
	} {
		topo, err := Generate(spec)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		if !topo.SparseOnly() {
			t.Fatalf("%s: generated topology must be sparse-only", topo.Name)
		}
		if ok, missing := topo.Connected(0); !ok {
			t.Fatalf("%s: node %d unreachable from the gateways", topo.Name, missing)
		}
		if len(topo.SuggestedSources) == 0 {
			t.Fatalf("%s: no suggested sources", topo.Name)
		}
		s := topo.SparseView()
		if s.Links() == 0 {
			t.Fatalf("%s: no links", topo.Name)
		}
		meanDeg := float64(s.Links()) / float64(topo.N())
		if meanDeg < 4 || meanDeg > 120 {
			t.Fatalf("%s: mean degree %.1f outside sane range", topo.Name, meanDeg)
		}

		again, err := Generate(spec)
		if err != nil {
			t.Fatalf("%v again: %v", spec, err)
		}
		for i := range topo.Nodes {
			if topo.Nodes[i] != again.Nodes[i] {
				t.Fatalf("%s: node %d differs across identical generations", topo.Name, i)
			}
		}
	}
}

// TestSearchRadiusConservative verifies no keepable link can sit outside
// the candidate search radius: at the radius boundary, even a +4-sigma
// shadowing draw cannot reach the prune floor.
func TestSearchRadiusConservative(t *testing.T) {
	r := searchRadiusM(genTxPowerDBm, 4, DefaultGuardDB)
	loss := phy.PathLossDB(r, 0)
	best := phy.RSS(genTxPowerDBm, loss, shadowGuardSigmas*4)
	floor := phy.SensitivityDBm - DefaultGuardDB
	if best < floor-0.5 || best > floor+0.5 {
		t.Fatalf("radius %.1f m: best-case RSS %.2f should sit at the %.2f floor", r, best, floor)
	}
}

// FuzzGenerate drives the generator with arbitrary parameters and checks
// the invariants that must hold unconditionally: no NaN RSS on any kept
// link, symmetric links, and a connected gateway component.
func FuzzGenerate(f *testing.F) {
	f.Add(uint8(0), int16(200), int64(1), int8(0))
	f.Add(uint8(1), int16(450), int64(9), int8(2))
	f.Add(uint8(2), int16(300), int64(-4), int8(5))
	f.Fuzz(func(t *testing.T, kindSel uint8, nodes int16, seed int64, aps int8) {
		kinds := []GenKind{GenPlant, GenCampus, GenField}
		p := GenParams{
			Kind:  kinds[int(kindSel)%len(kinds)],
			Nodes: int(nodes),
			Seed:  seed,
			APs:   int(aps),
		}
		if p.Nodes < 1 || p.Nodes > 2000 {
			t.Skip()
		}
		topo, err := Generate(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", topo.Name, err)
		}
		s := topo.SparseView()
		for a := 1; a <= topo.N(); a++ {
			cols, vals, _ := s.Row(NodeID(a))
			for i, b := range cols {
				if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
					t.Fatalf("link %d->%d: RSS %v", a, b, vals[i])
				}
				if back, ok := s.RSS(b, NodeID(a)); !ok || back != vals[i] {
					t.Fatalf("link %d->%d asymmetric", a, b)
				}
			}
		}
		if ok, missing := topo.Connected(0); !ok {
			t.Fatalf("%s: node %d disconnected from gateways", topo.Name, missing)
		}
	})
}
