package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteFileAtomicCreatesDirsAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a", "b", "x.json")
	if err := WriteFileAtomic(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("read back %q", b)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the final file, found %d entries", len(entries))
	}
}

func TestWriteFileAtomicOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	for _, payload := range []string{"first", "second-longer", "3"} {
		if err := WriteFileAtomic(path, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		b, _ := os.ReadFile(path)
		if string(b) != payload {
			t.Fatalf("got %q want %q", b, payload)
		}
	}
}

// write creates a file with a controlled mtime so eviction order is
// deterministic under test.
func write(t *testing.T, dir, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := WriteFileAtomic(path, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	mt := time.Now().Add(-age)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEvictLRUByEntries(t *testing.T) {
	dir := t.TempDir()
	oldest := write(t, dir, "a.snap", 10, 3*time.Hour)
	mid := write(t, dir, "b.snap", 10, 2*time.Hour)
	newest := write(t, dir, "c.snap", 10, time.Hour)
	other := write(t, dir, "d.json", 10, 50*time.Hour) // wrong extension: immune

	n, err := EvictLRU(dir, ".snap", Budget{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, err := os.Stat(oldest); !os.IsNotExist(err) {
		t.Fatalf("oldest survived: %v", err)
	}
	for _, p := range []string{mid, newest, other} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("%s should survive: %v", p, err)
		}
	}
}

func TestEvictLRUByBytesRecursive(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	oldest := write(t, sub, "a.json", 600, 3*time.Hour)
	newest := write(t, dir, "b.json", 600, time.Hour)

	n, err := EvictLRU(dir, ".json", Budget{MaxBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, err := os.Stat(oldest); !os.IsNotExist(err) {
		t.Fatal("oldest (in subdirectory) should be evicted")
	}
	if _, err := os.Stat(newest); err != nil {
		t.Fatal("newest should survive")
	}
}

func TestEvictLRUUnboundedAndMissingDir(t *testing.T) {
	if n, err := EvictLRU(t.TempDir(), "", Budget{}); err != nil || n != 0 {
		t.Fatalf("unbounded budget: n=%d err=%v", n, err)
	}
	if n, err := EvictLRU(filepath.Join(t.TempDir(), "nope"), "", Budget{MaxEntries: 1}); err != nil || n != 0 {
		t.Fatalf("missing dir: n=%d err=%v", n, err)
	}
}

func TestTouchRefreshesRecency(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.snap", 10, 3*time.Hour)
	write(t, dir, "b.snap", 10, 2*time.Hour)
	Touch(a) // a becomes most recent: b is now the LRU victim
	if _, err := EvictLRU(dir, ".snap", Budget{MaxEntries: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(a); err != nil {
		t.Fatal("touched file should survive eviction")
	}
}
