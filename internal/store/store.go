// Package store holds the on-disk persistence utilities every cache in
// the repository shares: atomic file writes (unique temp file + rename,
// so concurrent writers racing on one path always leave a complete file)
// and least-recently-used eviction over a directory with entry-count and
// byte budgets. The snapshot warm-start cache and the server's
// content-addressed result store both sit on these helpers instead of
// carrying private copies.
package store

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// tmpSuffix marks in-progress writes; eviction and listings skip them.
const tmpSuffix = ".tmp"

// WriteFileAtomic writes data to path atomically and durably: the bytes
// land in a uniquely named temp file in the destination directory
// (created if missing), are fsync'd, and are renamed over the final
// path, after which the parent directory is fsync'd so the rename
// itself survives power loss. Two writers racing on the same path
// cannot interleave; the loser's complete file simply replaces the
// winner's complete file. Without the two syncs a "written" file could
// reappear after a crash as empty or with a stale name — fatal for
// content-addressed stores, whose names promise what the bytes hash to.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+tmpSuffix+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making a just-created or just-renamed
// entry durable. On filesystems where directories cannot be fsync'd the
// error is reported to the caller, who decides whether durability is a
// hard requirement.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Touch refreshes the file's modification time to now, marking it
// recently used for EvictLRU. A missing file is not an error (a
// concurrent eviction may have removed it).
func Touch(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// Budget bounds a cache directory. Zero fields mean unbounded.
type Budget struct {
	// MaxEntries caps the number of matching files.
	MaxEntries int
	// MaxBytes caps the summed size of matching files.
	MaxBytes int64
}

// bounded reports whether the budget constrains anything.
func (b Budget) bounded() bool { return b.MaxEntries > 0 || b.MaxBytes > 0 }

// entry is one evictable file.
type entry struct {
	path  string
	size  int64
	mtime time.Time
}

// EvictLRU walks dir recursively and removes the least-recently-modified
// files matching ext (e.g. ".snap", ".json"; empty matches every regular
// file) until the remaining set fits the budget. In-progress atomic
// writes (temp files) are never counted or removed. It returns how many
// files were evicted. A missing directory is an empty cache, not an
// error.
func EvictLRU(dir, ext string, b Budget) (int, error) {
	if !b.bounded() {
		return 0, nil
	}
	var files []entry
	var total int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A file evicted by a concurrent process mid-walk is fine.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() || strings.Contains(d.Name(), tmpSuffix) {
			return nil
		}
		if ext != "" && !strings.HasSuffix(d.Name(), ext) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		files = append(files, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	over := func() bool {
		return (b.MaxEntries > 0 && len(files) > b.MaxEntries) ||
			(b.MaxBytes > 0 && total > b.MaxBytes)
	}
	if !over() {
		return 0, nil
	}
	// Oldest first; ties break on path so eviction order is stable.
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	removed := 0
	for over() && len(files) > 0 {
		victim := files[0]
		files = files[1:]
		total -= victim.size
		if err := os.Remove(victim.path); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
