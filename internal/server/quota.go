package server

import "sync"

// quotas enforces the per-tenant admission limit: at most limit jobs
// queued or running per tenant at once. Completed jobs release their
// slot from the worker goroutine.
type quotas struct {
	mu    sync.Mutex
	limit int
	used  map[string]int
}

func newQuotas(limit int) *quotas {
	return &quotas{limit: limit, used: make(map[string]int)}
}

// acquire claims a slot for tenant; it reports false when the tenant is
// at its limit.
func (q *quotas) acquire(tenant string) bool {
	if q.limit <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.used[tenant] >= q.limit {
		return false
	}
	q.used[tenant]++
	return true
}

// force claims a slot for tenant unconditionally — journal recovery
// re-acquires the slots the previous incarnation held, even if the
// limit was lowered in between, so release stays balanced.
func (q *quotas) force(tenant string) {
	if q.limit <= 0 {
		return
	}
	q.mu.Lock()
	q.used[tenant]++
	q.mu.Unlock()
}

// release returns tenant's slot.
func (q *quotas) release(tenant string) {
	if q.limit <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.used[tenant] > 0 {
		q.used[tenant]--
	}
	if q.used[tenant] == 0 {
		delete(q.used, tenant)
	}
}

// inUse returns tenant's current slot count.
func (q *quotas) inUse(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.used[tenant]
}
