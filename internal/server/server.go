// Package server is the simulation-as-a-service daemon behind
// cmd/digs-server: an HTTP JSON API that accepts scenario.Spec
// submissions, runs them through the shared scenario.RunSpec executor on
// a bounded worker pool, streams per-job telemetry over SSE, and serves
// completed results from a content-addressed on-disk store.
//
// Admission control happens at submit time, in order: a store hit is
// answered immediately from cache (200), an identical in-flight
// submission is deduplicated onto the existing job (202), a tenant over
// its quota or a full queue is pushed back with 429 + Retry-After, and a
// draining server refuses with 503. Everything admitted is a Job that a
// worker picks up FIFO; near-identical scenarios (same deployment,
// protocol, seed and config, different measurement window or faults)
// warm-start their formation phase from the server's snapshot warm pool.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/store"
	"github.com/digs-net/digs/internal/telemetry"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the simulation worker pool size (default 2; tests may
	// use 0 to hold jobs in the queue).
	Workers int
	// QueueDepth bounds the admitted-but-not-running backlog
	// (default 64). A full queue pushes back with 429 + Retry-After.
	QueueDepth int
	// TenantQuota caps queued+running jobs per tenant (0 = unlimited).
	TenantQuota int
	// MaxNodes rejects scenarios over this deployment size with 413
	// (0 = 20000).
	MaxNodes int
	// DataDir is the root for the result store ("results/") and the
	// warm-start pool ("warm/"). Empty disables both caches.
	DataDir string
	// ResultBudget bounds the content-addressed result store.
	ResultBudget store.Budget
	// WarmBudget bounds the warm-start snapshot pool.
	WarmBudget store.Budget
	// MaxStreamLines bounds each job's retained telemetry backlog.
	MaxStreamLines int
	// FinishedJobCap bounds how many terminal jobs are kept addressable
	// for status/stream/result replay (default 256). Oldest-finished
	// jobs beyond the cap are forgotten, so a long-running daemon's
	// memory is bounded by cap x per-job backlog rather than by every
	// job ever run.
	FinishedJobCap int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Workers < 0 {
		c.Workers = WorkersNone
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 20000
	}
	if c.FinishedJobCap <= 0 {
		c.FinishedJobCap = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Workers(0) in the Config zero value must mean "default", while tests
// need literal zero; WorkersNone is the sentinel for a pool with no
// workers.
const WorkersNone = -1

// Stats is the /v1/stats document.
type Stats struct {
	Submitted     int64 `json:"submitted"`
	CacheHits     int64 `json:"cache_hits"`
	DedupHits     int64 `json:"dedup_hits"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Canceled      int64 `json:"canceled"`
	WarmHits      int64 `json:"warm_hits"`
	RejectedQuota int64 `json:"rejected_quota"`
	RejectedQueue int64 `json:"rejected_queue"`
	Queued        int   `json:"queued"`
	Running       int   `json:"running"`
	StoredResults int   `json:"stored_results"`
	Draining      bool  `json:"draining"`
}

// Server is the daemon: admission control, the job queue and worker
// pool, the result store and the warm pool, plus the HTTP surface.
type Server struct {
	cfg     Config
	results *ResultStore    // nil when DataDir is empty
	warm    *snapshot.Cache // nil when DataDir is empty
	quota   *quotas

	mu       sync.Mutex
	jobs     map[string]*Job // by job ID, all states
	byHash   map[string]*Job // in-flight (queued/running) by spec hash
	finished []string        // terminal job IDs, oldest first, for pruning

	jobsCh    chan *Job
	stopCh    chan struct{}
	wg        sync.WaitGroup
	runCtx    context.Context
	runCancel context.CancelFunc
	draining  atomic.Bool
	nextID    atomic.Int64
	running   atomic.Int64

	submitted, cacheHits, dedupHits atomic.Int64
	completed, failed, canceled     atomic.Int64
	warmHits, rejQuota, rejQueue    atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		quota:  newQuotas(cfg.TenantQuota),
		jobs:   make(map[string]*Job),
		byHash: make(map[string]*Job),
		jobsCh: make(chan *Job, cfg.QueueDepth),
		stopCh: make(chan struct{}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if cfg.DataDir != "" {
		s.results = &ResultStore{Dir: filepath.Join(cfg.DataDir, "results"), Budget: cfg.ResultBudget}
		s.warm = &snapshot.Cache{Dir: filepath.Join(cfg.DataDir, "warm"), Budget: cfg.WarmBudget}
	}
	workers := cfg.Workers
	if workers == WorkersNone {
		workers = 0
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case j := <-s.jobsCh:
			// A stop racing with a ready queue must drain, not run.
			select {
			case <-s.stopCh:
				s.finishJob(j, func() { j.markCanceled("server shutting down") })
				continue
			default:
			}
			s.runJob(j)
		}
	}
}

// finishJob applies a terminal transition and releases the job's
// admission resources exactly once. Terminal jobs stay addressable for
// replay until FinishedJobCap newer jobs have finished, then they are
// forgotten so s.jobs (and the result/backlog bytes each Job pins)
// cannot grow without bound.
func (s *Server) finishJob(j *Job, mark func()) {
	mark()
	j.Stream.Close()
	s.quota.release(j.Tenant)
	s.mu.Lock()
	if s.byHash[j.SpecHash] == j {
		delete(s.byHash, j.SpecHash)
	}
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.FinishedJobCap {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	switch j.Status() {
	case StatusDone:
		s.completed.Add(1)
	case StatusFailed:
		s.failed.Add(1)
	case StatusCanceled:
		s.canceled.Add(1)
	}
}

func (s *Server) runJob(j *Job) {
	j.markRunning()
	s.running.Add(1)
	defer s.running.Add(-1)
	var tracer telemetry.Tracer = telemetry.NewJSONL(j.Stream)
	res, rinfo, err := scenario.RunSpec(s.runCtx, j.Spec, scenario.RunOpts{
		Tracer: tracer,
		Warm:   s.warm,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || s.runCtx.Err() != nil {
			s.finishJob(j, func() { j.markCanceled("canceled by shutdown deadline") })
		} else {
			s.finishJob(j, func() { j.markFailed(err.Error()) })
		}
		return
	}
	if rinfo.WarmHit {
		s.warmHits.Add(1)
	}
	enc, err := res.Encode()
	if err != nil {
		s.finishJob(j, func() { j.markFailed(fmt.Sprintf("encoding result: %v", err)) })
		return
	}
	rhash, err := res.HashResult()
	if err != nil {
		s.finishJob(j, func() { j.markFailed(fmt.Sprintf("hashing result: %v", err)) })
		return
	}
	if s.results != nil {
		if err := s.results.Put(j.SpecHash, enc); err != nil {
			// The run itself succeeded; a store failure only costs
			// future cache hits.
			j.Stream.Write([]byte(fmt.Sprintf(
				`{"schema":"digs-server/v1","event":"store_error","detail":%q}`+"\n", err.Error())))
		}
	}
	s.finishJob(j, func() { j.markDone(enc, rhash, rinfo.WarmHit) })
}

// Shutdown drains the server: no new submissions, in-flight jobs run to
// completion, queued jobs are canceled. If ctx expires before the
// workers finish, the run context is canceled so in-flight simulations
// abort at their next chunk boundary.
func (s *Server) Shutdown(ctx context.Context) error {
	// Flipping draining under s.mu closes the submit/shutdown race:
	// handleSubmit re-checks the flag inside the critical section that
	// registers and enqueues a job, so once this Lock/Unlock pair has
	// run, every admitted job is already in jobsCh and the drain loop
	// below provably sees it.
	s.mu.Lock()
	if !s.draining.CompareAndSwap(false, true) {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.mu.Unlock()
	close(s.stopCh)

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel()
		<-done
		err = ctx.Err()
	}
	s.runCancel()

	// Cancel whatever the workers never picked up (including everything,
	// when the pool is empty).
	for {
		select {
		case j := <-s.jobsCh:
			s.finishJob(j, func() { j.markCanceled("server shutting down") })
		default:
			return err
		}
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// tenant identifies the caller for quota accounting.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-DiGS-Tenant"); t != "" {
		return t
	}
	return "default"
}

// submitAccepted is the 202 response body.
type submitAccepted struct {
	JobID    string `json:"job_id"`
	SpecHash string `json:"spec_hash"`
	Status   Status `json:"status"`
	Dedup    bool   `json:"dedup,omitempty"`
}

// submitCached is the 200 cache-hit response body.
type submitCached struct {
	SpecHash string          `json:"spec_hash"`
	Cached   bool            `json:"cached"`
	Result   json.RawMessage `json:"result"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, apiError{"server is draining"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if n := spec.GenNodes(); n > s.cfg.MaxNodes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiError{fmt.Sprintf("%d nodes exceeds this server's limit of %d", n, s.cfg.MaxNodes)})
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	s.submitted.Add(1)

	// Content-addressed fast path: an identical scenario already ran.
	if s.results != nil {
		if b, ok := s.results.Get(hash); ok {
			s.cacheHits.Add(1)
			writeJSON(w, http.StatusOK, submitCached{SpecHash: hash, Cached: true, Result: b})
			return
		}
	}

	ten := tenant(r)

	// Draining re-check, dedup check, job registration and enqueue are
	// one critical section: two identical concurrent submissions must
	// race to exactly one job, and a submission racing Shutdown must
	// either land in jobsCh before Shutdown flips draining (so its
	// drain loop cancels the job) or observe the flag and refuse —
	// never enqueue after the final drain has run.
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{"server is draining"})
		return
	}
	if existing, ok := s.byHash[hash]; ok {
		s.mu.Unlock()
		s.dedupHits.Add(1)
		writeJSON(w, http.StatusAccepted, submitAccepted{
			JobID: existing.ID, SpecHash: hash, Status: existing.Status(), Dedup: true,
		})
		return
	}
	if !s.quota.acquire(ten) {
		s.mu.Unlock()
		s.rejQuota.Add(1)
		s.retryAfter(w)
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("tenant %q is at its quota of %d in-flight jobs", ten, s.cfg.TenantQuota)})
		return
	}
	id := fmt.Sprintf("j-%06d", s.nextID.Add(1))
	j := newJob(id, ten, hash, spec, s.cfg.MaxStreamLines)
	s.jobs[id] = j
	s.byHash[hash] = j
	select {
	case s.jobsCh <- j:
		s.mu.Unlock()
	default:
		// Queue full: back out the registration and push back.
		delete(s.jobs, id)
		delete(s.byHash, hash)
		s.mu.Unlock()
		s.quota.release(ten)
		s.rejQueue.Add(1)
		s.retryAfter(w)
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("queue full (%d jobs)", s.cfg.QueueDepth)})
		return
	}
	writeJSON(w, http.StatusAccepted, submitAccepted{JobID: id, SpecHash: hash, Status: StatusQueued})
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.View(false))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	switch j.Status() {
	case StatusDone:
		b, rhash := j.Result()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-DiGS-Result-Hash", rhash)
		w.Write(b)
		w.Write([]byte("\n"))
	case StatusFailed, StatusCanceled:
		writeJSON(w, http.StatusGone, j.View(false))
	default:
		s.retryAfter(w)
		writeJSON(w, http.StatusAccepted, j.View(false))
	}
}

// isSpecHash reports whether s is a well-formed spec hash: exactly 64
// lowercase hex characters. ServeMux percent-decodes path values after
// matching, so without this check a {hash} like "..%2F..%2Fetc%2Fx"
// would reach ResultStore.path as "../../etc/x" and escape the store.
func isSpecHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.results == nil {
		writeJSON(w, http.StatusNotFound, apiError{"result store disabled"})
		return
	}
	hash := r.PathValue("hash")
	if !isSpecHash(hash) {
		writeJSON(w, http.StatusNotFound, apiError{"no stored result for that spec hash"})
		return
	}
	b, ok := s.results.Get(hash)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no stored result for that spec hash"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

// handleStream serves the job's telemetry as Server-Sent Events: each
// JSONL line is one "data:" event, replayed from the start of the
// retained window and then followed live; a final "done" event carries
// the job's terminal view. Whenever the subscriber's cursor has fallen
// out of the retention window — at attach or mid-stream on a slow
// client — a "dropped" event reports how many lines the gap swallowed.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{"streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	from := 0
	for {
		lines, next, skipped, closed, wait := j.Stream.Next(from)
		if skipped > 0 {
			if _, err := fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", skipped); err != nil {
				return
			}
		}
		for _, ln := range lines {
			if _, err := fmt.Fprintf(w, "data: %s\n\n", ln); err != nil {
				return
			}
		}
		if skipped > 0 || len(lines) > 0 {
			fl.Flush()
		}
		from = next
		if closed {
			view, _ := json.Marshal(j.View(true))
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", view)
			fl.Flush()
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := Stats{
		Submitted:     s.submitted.Load(),
		CacheHits:     s.cacheHits.Load(),
		DedupHits:     s.dedupHits.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Canceled:      s.canceled.Load(),
		WarmHits:      s.warmHits.Load(),
		RejectedQuota: s.rejQuota.Load(),
		RejectedQueue: s.rejQueue.Load(),
		Queued:        len(s.jobsCh),
		Running:       int(s.running.Load()),
		Draining:      s.draining.Load(),
	}
	if s.results != nil {
		st.StoredResults = s.results.Len()
	}
	writeJSON(w, http.StatusOK, st)
}
