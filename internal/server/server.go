// Package server is the simulation-as-a-service daemon behind
// cmd/digs-server: an HTTP JSON API that accepts scenario.Spec
// submissions, runs them through the shared scenario.RunSpec executor on
// a bounded worker pool, streams per-job telemetry over SSE, and serves
// completed results from a content-addressed on-disk store.
//
// Admission control happens at submit time, in order: a store hit is
// answered immediately from cache (200), an identical in-flight
// submission is deduplicated onto the existing job (202), a tenant over
// its quota or a full queue is pushed back with 429 + Retry-After, and a
// draining server refuses with 503. Everything admitted is a Job that a
// worker picks up FIFO; near-identical scenarios (same deployment,
// protocol, seed and config, different measurement window or faults)
// warm-start their formation phase from the server's snapshot warm pool.
//
// The server is crash-safe: accepted jobs are recorded in a durable
// journal (journal.go) before the 202 leaves the building, workers are
// panic-isolated, failed attempts retry with exponential backoff before
// dead-lettering, and persistent write failures flip the server into a
// degraded state that sheds new work instead of silently losing it.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/store"
	"github.com/digs-net/digs/internal/telemetry"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the simulation worker pool size (default 2; tests may
	// use 0 to hold jobs in the queue).
	Workers int
	// QueueDepth bounds the admitted-but-not-running backlog
	// (default 64). A full queue pushes back with 429 + Retry-After.
	QueueDepth int
	// TenantQuota caps queued+running jobs per tenant (0 = unlimited).
	TenantQuota int
	// MaxNodes rejects scenarios over this deployment size with 413
	// (0 = 20000).
	MaxNodes int
	// DataDir is the root for the result store ("results/") and the
	// warm-start pool ("warm/"). Empty disables both caches.
	DataDir string
	// ResultBudget bounds the content-addressed result store.
	ResultBudget store.Budget
	// WarmBudget bounds the warm-start snapshot pool.
	WarmBudget store.Budget
	// MaxStreamLines bounds each job's retained telemetry backlog.
	MaxStreamLines int
	// FinishedJobCap bounds how many terminal jobs are kept addressable
	// for status/stream/result replay (default 256). Oldest-finished
	// jobs beyond the cap are forgotten, so a long-running daemon's
	// memory is bounded by cap x per-job backlog rather than by every
	// job ever run.
	FinishedJobCap int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxAttempts bounds how many times one job may run — the first try
	// included, and attempts interrupted by a crash count too, so a
	// spec that reliably kills the process cannot crash-loop the daemon
	// forever (default 3). A job that exhausts the budget is
	// dead-lettered as failed, visible on the API, never re-enqueued.
	MaxAttempts int
	// RetryBase is the backoff before the first retry; it doubles per
	// failed attempt up to RetryCap, and the actual delay is jittered
	// to [d/2, d] so a burst of poisoned jobs does not retry in
	// lockstep (defaults 200ms / 5s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// DisableJournal turns off the durable job journal even when
	// DataDir is set (accepted jobs then die with the process).
	DisableJournal bool
	// JournalNoSync skips the per-record fsync: faster submits, but a
	// crash may lose the most recent records (benchmarks only).
	JournalNoSync bool
	// AllowDegradedSubmits keeps accepting new submissions after the
	// server has degraded (journal or result-store writes failing).
	// Default false: a degraded server sheds new work with 503 while
	// in-flight jobs finish.
	AllowDegradedSubmits bool
	// Name identifies this backend instance in a multi-node tier; it is
	// echoed as the X-DiGS-Backend header on every API response so a
	// gateway (or a human with curl) can tell which replica answered.
	Name string

	// runFn is the test seam for the spec executor
	// (default scenario.RunSpec).
	runFn func(context.Context, scenario.Spec, scenario.RunOpts) (*scenario.Result, scenario.RunInfo, error)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Workers < 0 {
		c.Workers = WorkersNone
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 20000
	}
	if c.FinishedJobCap <= 0 {
		c.FinishedJobCap = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Second
	}
	if c.runFn == nil {
		c.runFn = scenario.RunSpec
	}
	return c
}

// Workers(0) in the Config zero value must mean "default", while tests
// need literal zero; WorkersNone is the sentinel for a pool with no
// workers.
const WorkersNone = -1

// Stats is the /v1/stats document.
type Stats struct {
	Submitted     int64 `json:"submitted"`
	CacheHits     int64 `json:"cache_hits"`
	DedupHits     int64 `json:"dedup_hits"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Canceled      int64 `json:"canceled"`
	WarmHits      int64 `json:"warm_hits"`
	RejectedQuota int64 `json:"rejected_quota"`
	RejectedQueue int64 `json:"rejected_queue"`
	// Retries counts failed attempts that were re-queued with backoff
	// rather than dead-lettered.
	Retries int64 `json:"retries"`
	// Recovered counts jobs re-enqueued from the journal at startup —
	// work the previous incarnation accepted but never finished.
	Recovered int64 `json:"recovered"`
	// JournalDroppedTail counts damaged trailing journal lines the
	// startup replay discarded (a crash mid-append leaves at most one).
	JournalDroppedTail int64 `json:"journal_dropped_tail,omitempty"`
	Queued             int   `json:"queued"`
	Running            int   `json:"running"`
	// Retrying counts jobs currently parked in backoff between
	// attempts (neither queued nor running).
	Retrying      int    `json:"retrying"`
	StoredResults int    `json:"stored_results"`
	Draining      bool   `json:"draining"`
	Degraded      bool   `json:"degraded"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// Server is the daemon: admission control, the job queue and worker
// pool, the result store and the warm pool, the durability journal,
// plus the HTTP surface.
type Server struct {
	cfg     Config
	results *ResultStore    // nil when DataDir is empty
	warm    *snapshot.Cache // nil when DataDir is empty
	journal *journal        // nil when DataDir is empty or DisableJournal
	quota   *quotas

	mu          sync.Mutex
	jobs        map[string]*Job // by job ID, all states
	byHash      map[string]*Job // in-flight (queued/running/retrying) by spec hash
	finished    []string        // terminal job IDs, oldest first, for pruning
	retryTimers map[string]*time.Timer

	jobsCh    chan *Job
	stopCh    chan struct{}
	wg        sync.WaitGroup
	retryWg   sync.WaitGroup
	runCtx    context.Context
	runCancel context.CancelFunc
	draining  atomic.Bool
	nextID    atomic.Int64
	running   atomic.Int64

	degraded      atomic.Bool
	degradedMu    sync.Mutex
	degradedCause string

	submitted, cacheHits, dedupHits atomic.Int64
	completed, failed, canceled     atomic.Int64
	warmHits, rejQuota, rejQueue    atomic.Int64
	retries, recovered, tailDrop    atomic.Int64
}

// New builds a Server, replays its journal (re-registering finished
// jobs and re-enqueueing interrupted ones), and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		quota:       newQuotas(cfg.TenantQuota),
		jobs:        make(map[string]*Job),
		byHash:      make(map[string]*Job),
		retryTimers: make(map[string]*time.Timer),
		stopCh:      make(chan struct{}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if cfg.DataDir != "" {
		s.results = &ResultStore{Dir: filepath.Join(cfg.DataDir, "results"), Budget: cfg.ResultBudget}
		s.warm = &snapshot.Cache{Dir: filepath.Join(cfg.DataDir, "warm"), Budget: cfg.WarmBudget}
	}
	var pending []*Job
	if cfg.DataDir != "" && !cfg.DisableJournal {
		var err error
		pending, err = s.recover(filepath.Join(cfg.DataDir, journalFile))
		if err != nil {
			return nil, err
		}
	}
	// The channel outgrows QueueDepth by the recovered backlog so the
	// replayed jobs always fit; admission enforces QueueDepth itself.
	s.jobsCh = make(chan *Job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.jobsCh <- j
	}
	workers := cfg.Workers
	if workers == WorkersNone {
		workers = 0
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover replays the journal at path into the job table: terminal jobs
// come back addressable (done jobs with their verified result bytes
// from the store), and jobs the previous incarnation accepted but never
// finished come back queued with their consumed-attempt count intact.
func (s *Server) recover(path string) ([]*Job, error) {
	jl, rec, err := recoverJournal(path, s.results, s.cfg.FinishedJobCap, !s.cfg.JournalNoSync)
	if err != nil {
		return nil, err
	}
	s.journal = jl
	s.nextID.Store(rec.maxID)
	s.tailDrop.Store(int64(rec.dropped))
	for _, rj := range rec.finished {
		j := newJob(rj.id, rj.tenant, rj.specHash, rj.spec, s.cfg.MaxStreamLines)
		j.setAttempts(rj.attempts)
		switch rj.op {
		case opDone:
			b, _ := s.results.Get(rj.specHash) // verified during recovery
			j.markDone(b, rj.resultHash, false)
		case opFail:
			j.markFailed(rj.detail)
		case opCancel:
			j.markCanceled(rj.detail)
		}
		j.Stream.Close()
		s.jobs[j.ID] = j
		s.finished = append(s.finished, j.ID)
	}
	var pending []*Job
	for _, rj := range rec.pending {
		if s.byHash[rj.specHash] != nil {
			continue // only a tampered journal holds two in-flight twins
		}
		j := newJob(rj.id, rj.tenant, rj.specHash, rj.spec, s.cfg.MaxStreamLines)
		j.setAttempts(rj.attempts)
		s.jobs[j.ID] = j
		s.byHash[rj.specHash] = j
		s.quota.force(rj.tenant)
		pending = append(pending, j)
	}
	s.recovered.Store(int64(len(pending)))
	return pending, nil
}

// degrade flips the server into degraded health: the journal or a store
// can no longer be written (ENOSPC, dead disk), so results and accepted
// jobs can no longer be made durable. In-flight work keeps running, but
// healthz reports 503 and (unless AllowDegradedSubmits) new submissions
// are shed. The first cause wins; the state is sticky until restart —
// by then an operator has freed the disk, and the journal replay puts
// the world back together.
func (s *Server) degrade(cause string) {
	s.degradedMu.Lock()
	if !s.degraded.Load() {
		s.degradedCause = cause
	}
	s.degradedMu.Unlock()
	s.degraded.Store(true)
}

// DegradedCause returns the degraded state and its first cause.
func (s *Server) DegradedCause() (bool, string) {
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return s.degraded.Load(), s.degradedCause
}

// journalAppend records a lifecycle transition, degrading the server on
// write failure rather than blocking the job's progress.
func (s *Server) journalAppend(rec journalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec); err != nil {
		s.degrade(fmt.Sprintf("journal append: %v", err))
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case j := <-s.jobsCh:
			// A stop racing with a ready queue must drain, not run.
			select {
			case <-s.stopCh:
				s.finishJob(j, func() { j.markCanceled("server shutting down") })
				continue
			default:
			}
			s.runJob(j)
		}
	}
}

// finishJob applies a terminal transition, journals it, and releases
// the job's admission resources exactly once. Terminal jobs stay
// addressable for replay until FinishedJobCap newer jobs have finished,
// then they are forgotten so s.jobs (and the result/backlog bytes each
// Job pins) cannot grow without bound.
func (s *Server) finishJob(j *Job, mark func()) {
	mark()
	j.Stream.Close()
	s.quota.release(j.Tenant)
	s.mu.Lock()
	if s.byHash[j.SpecHash] == j {
		delete(s.byHash, j.SpecHash)
	}
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.FinishedJobCap {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	switch j.Status() {
	case StatusDone:
		s.completed.Add(1)
		_, rhash := j.Result()
		s.journalAppend(journalRecord{Op: opDone, Job: j.ID, ResultHash: rhash})
	case StatusFailed:
		s.failed.Add(1)
		v := j.View(false)
		s.journalAppend(journalRecord{Op: opFail, Job: j.ID, Attempt: v.Attempts, Detail: v.Error})
	case StatusCanceled:
		s.canceled.Add(1)
		s.journalAppend(journalRecord{Op: opCancel, Job: j.ID, Detail: j.View(false).Error})
	}
}

// execute runs one attempt of the job's spec under a recover() barrier:
// a panic anywhere in the simulator surfaces as an ordinary error (with
// the stack preserved on the job's telemetry stream for post-mortems)
// instead of taking down the daemon and every other job with it.
func (s *Server) execute(j *Job) (res *scenario.Result, rinfo scenario.RunInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack, _ := json.Marshal(string(debug.Stack()))
			j.Stream.Write([]byte(fmt.Sprintf(
				`{"schema":"digs-server/v1","event":"worker_panic","detail":%q,"stack":%s}`+"\n", fmt.Sprint(r), stack)))
			res, rinfo, err = nil, scenario.RunInfo{}, fmt.Errorf("worker panic: %v", r)
		}
	}()
	j.markRunning()
	var tracer telemetry.Tracer = telemetry.NewJSONL(j.Stream)
	return s.cfg.runFn(s.runCtx, j.Spec, scenario.RunOpts{
		Tracer: tracer,
		Warm:   s.warm,
	})
}

func (s *Server) runJob(j *Job) {
	attempt := j.beginAttempt()
	s.journalAppend(journalRecord{Op: opStart, Job: j.ID, Attempt: attempt})
	s.running.Add(1)
	res, rinfo, err := s.execute(j)
	s.running.Add(-1)
	if err != nil {
		if errors.Is(err, context.Canceled) || s.runCtx.Err() != nil {
			s.finishJob(j, func() { j.markCanceled("canceled by shutdown deadline") })
			return
		}
		s.retryOrFail(j, attempt, err.Error())
		return
	}
	if rinfo.WarmHit {
		s.warmHits.Add(1)
	}
	enc, err := res.Encode()
	if err != nil {
		s.retryOrFail(j, attempt, fmt.Sprintf("encoding result: %v", err))
		return
	}
	rhash, err := res.HashResult()
	if err != nil {
		s.retryOrFail(j, attempt, fmt.Sprintf("hashing result: %v", err))
		return
	}
	if s.results != nil {
		if err := s.results.Put(j.SpecHash, enc); err != nil {
			// The run itself succeeded and its bytes are in memory, so
			// the job still finishes — but the store is no longer
			// accepting writes, which is a durability failure, not a
			// cache miss: degrade so the health surface says so.
			s.degrade(fmt.Sprintf("result store put: %v", err))
			j.Stream.Write([]byte(fmt.Sprintf(
				`{"schema":"digs-server/v1","event":"store_error","detail":%q}`+"\n", err.Error())))
		}
	}
	s.finishJob(j, func() { j.markDone(enc, rhash, rinfo.WarmHit) })
}

// retryOrFail routes a failed attempt: back into the queue after a
// jittered exponential backoff while budget remains, else into the
// terminal failed (dead-letter) state. Either way the pool survives — a
// poisoned spec costs its own attempts, never the daemon.
func (s *Server) retryOrFail(j *Job, attempt int, msg string) {
	if attempt >= s.cfg.MaxAttempts {
		s.finishJob(j, func() { j.markFailed(msg) })
		return
	}
	s.retries.Add(1)
	j.markRetrying(msg)
	s.journalAppend(journalRecord{Op: opRetry, Job: j.ID, Attempt: attempt, Detail: msg})
	s.scheduleRetry(j, retryDelay(s.cfg.RetryBase, s.cfg.RetryCap, attempt))
}

// retryDelay is the backoff before the retry that follows failed
// attempt n (1-based): base doubled per prior failure, capped, then
// jittered to [d/2, d].
func retryDelay(base, cap time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// scheduleRetry parks the job on a timer that re-enqueues it. The timer
// is tracked so Shutdown can cancel parked jobs promptly instead of
// waiting out their backoff.
func (s *Server) scheduleRetry(j *Job, d time.Duration) {
	s.retryWg.Add(1)
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		s.retryWg.Done()
		s.finishJob(j, func() { j.markCanceled("server shutting down") })
		return
	}
	s.retryTimers[j.ID] = time.AfterFunc(d, func() {
		defer s.retryWg.Done()
		s.requeue(j)
	})
	s.mu.Unlock()
}

// requeue moves a parked job back into the queue when its backoff
// elapses — unless the server is draining (cancel) or admissions have
// filled the queue in the meantime (park again briefly).
func (s *Server) requeue(j *Job) {
	s.mu.Lock()
	delete(s.retryTimers, j.ID)
	if s.draining.Load() {
		s.mu.Unlock()
		s.finishJob(j, func() { j.markCanceled("server shutting down") })
		return
	}
	select {
	case s.jobsCh <- j:
		j.markQueued()
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.scheduleRetry(j, s.cfg.RetryBase)
	}
}

// Shutdown drains the server: no new submissions, in-flight jobs run to
// completion, queued jobs are canceled. If ctx expires before the
// workers finish, the run context is canceled so in-flight simulations
// abort at their next chunk boundary.
func (s *Server) Shutdown(ctx context.Context) error {
	// Flipping draining under s.mu closes the submit/shutdown race:
	// handleSubmit re-checks the flag inside the critical section that
	// registers and enqueues a job, so once this Lock/Unlock pair has
	// run, every admitted job is already in jobsCh and the drain loop
	// below provably sees it.
	s.mu.Lock()
	if !s.draining.CompareAndSwap(false, true) {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.mu.Unlock()
	close(s.stopCh)

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel()
		<-done
		err = ctx.Err()
	}
	s.runCancel()

	// With the workers gone, no new retry can be scheduled (a late
	// scheduleRetry/requeue observes the draining flag and cancels
	// inline). Cancel the jobs still parked in backoff: a timer we stop
	// never fires, so its job is canceled here; one that already fired
	// either saw the flag or landed in jobsCh for the drain loop below.
	// retryWg settles the in-between.
	s.mu.Lock()
	timers := s.retryTimers
	s.retryTimers = make(map[string]*time.Timer)
	var parked []*Job
	for id, t := range timers {
		if t.Stop() {
			parked = append(parked, s.jobs[id])
			s.retryWg.Done()
		}
	}
	s.mu.Unlock()
	for _, j := range parked {
		if j != nil {
			s.finishJob(j, func() { j.markCanceled("server shutting down") })
		}
	}
	s.retryWg.Wait()

	// Cancel whatever the workers never picked up (including everything,
	// when the pool is empty).
	for {
		select {
		case j := <-s.jobsCh:
			s.finishJob(j, func() { j.markCanceled("server shutting down") })
		default:
			if s.journal != nil {
				s.journal.close()
			}
			return err
		}
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("PUT /v1/results/{hash}", s.handleResultPut)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	// healthz is pure liveness: the process is up and serving HTTP.
	// A draining or degraded server is still alive — restarting it
	// would interrupt in-flight work, which is exactly wrong.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// readyz is readiness: should a balancer route new work here?
	// 503 while draining (going away) or degraded (can't make accepted
	// work durable); the gateway probes this for routing decisions.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if degraded, cause := s.DegradedCause(); degraded {
			http.Error(w, "degraded: "+cause, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return s.tag(mux)
}

// Tracing headers shared by the gateway and the backends: which replica
// answered, which request this was, which job it concerned.
const (
	// HeaderBackend names the backend instance that produced a response.
	HeaderBackend = "X-DiGS-Backend"
	// HeaderRequest is the caller-assigned request ID, echoed back so one
	// request can be matched across gateway and backend logs.
	HeaderRequest = "X-DiGS-Request"
	// HeaderJob carries the job ID a response concerns, on submit as well
	// as on every job read, so a trace can follow submit → status → SSE.
	HeaderJob = "X-DiGS-Job"
)

// tag wraps the API with the tracing headers: the backend's name and an
// echo of the caller's request ID ride on every response.
func (s *Server) tag(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Name != "" {
			w.Header().Set(HeaderBackend, s.cfg.Name)
		}
		if rid := r.Header.Get(HeaderRequest); rid != "" {
			w.Header().Set(HeaderRequest, rid)
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// tenant identifies the caller for quota accounting.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-DiGS-Tenant"); t != "" {
		return t
	}
	return "default"
}

// submitAccepted is the 202 response body.
type submitAccepted struct {
	JobID    string `json:"job_id"`
	SpecHash string `json:"spec_hash"`
	Status   Status `json:"status"`
	Dedup    bool   `json:"dedup,omitempty"`
}

// submitCached is the 200 cache-hit response body.
type submitCached struct {
	SpecHash string          `json:"spec_hash"`
	Cached   bool            `json:"cached"`
	Result   json.RawMessage `json:"result"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, apiError{"server is draining"})
		return
	}
	if degraded, cause := s.DegradedCause(); degraded && !s.cfg.AllowDegradedSubmits {
		// Accepting work whose acceptance cannot be made durable would
		// silently break the crash-safety contract, so a degraded
		// server sheds new submissions up front (reads and in-flight
		// jobs are unaffected; healthz tells the balancer to stop
		// routing here).
		s.retryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, apiError{"server is degraded: " + cause})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if n := spec.GenNodes(); n > s.cfg.MaxNodes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiError{fmt.Sprintf("%d nodes exceeds this server's limit of %d", n, s.cfg.MaxNodes)})
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	s.submitted.Add(1)

	// Content-addressed fast path: an identical scenario already ran.
	if s.results != nil {
		if b, ok := s.results.Get(hash); ok {
			s.cacheHits.Add(1)
			writeJSON(w, http.StatusOK, submitCached{SpecHash: hash, Cached: true, Result: b})
			return
		}
	}

	ten := tenant(r)

	// Draining re-check, dedup check, job registration and enqueue are
	// one critical section: two identical concurrent submissions must
	// race to exactly one job, and a submission racing Shutdown must
	// either land in jobsCh before Shutdown flips draining (so its
	// drain loop cancels the job) or observe the flag and refuse —
	// never enqueue after the final drain has run.
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{"server is draining"})
		return
	}
	if existing, ok := s.byHash[hash]; ok {
		s.mu.Unlock()
		s.dedupHits.Add(1)
		w.Header().Set(HeaderJob, existing.ID)
		writeJSON(w, http.StatusAccepted, submitAccepted{
			JobID: existing.ID, SpecHash: hash, Status: existing.Status(), Dedup: true,
		})
		return
	}
	if !s.quota.acquire(ten) {
		s.mu.Unlock()
		s.rejQuota.Add(1)
		s.retryAfter(w)
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("tenant %q is at its quota of %d in-flight jobs", ten, s.cfg.TenantQuota)})
		return
	}
	// Admission enforces QueueDepth itself (the channel can be larger
	// after a recovery); every sender holds s.mu, so the length check
	// and the send below are one atomic step and the send cannot block.
	if len(s.jobsCh) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.quota.release(ten)
		s.rejQueue.Add(1)
		s.retryAfter(w)
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("queue full (%d jobs)", s.cfg.QueueDepth)})
		return
	}
	id := fmt.Sprintf("j-%06d", s.nextID.Add(1))
	j := newJob(id, ten, hash, spec, s.cfg.MaxStreamLines)
	// Durability before acknowledgement: the submit record (with the
	// full spec) is fsync'd before the 202 leaves, so every job a
	// client believes accepted survives SIGKILL and is recovered on
	// restart. A journal that cannot take the record refuses the job
	// and degrades the server.
	if s.journal != nil {
		if err := s.journal.append(journalRecord{
			Op: opSubmit, Job: id, Tenant: ten, SpecHash: hash, Spec: &spec,
		}); err != nil {
			s.mu.Unlock()
			s.quota.release(ten)
			s.degrade(fmt.Sprintf("journal append: %v", err))
			s.retryAfter(w)
			writeJSON(w, http.StatusServiceUnavailable,
				apiError{fmt.Sprintf("cannot durably accept jobs: %v", err)})
			return
		}
	}
	s.jobs[id] = j
	s.byHash[hash] = j
	s.jobsCh <- j
	s.mu.Unlock()
	w.Header().Set(HeaderJob, id)
	writeJSON(w, http.StatusAccepted, submitAccepted{JobID: id, SpecHash: hash, Status: StatusQueued})
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	w.Header().Set(HeaderJob, j.ID)
	writeJSON(w, http.StatusOK, j.View(false))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	w.Header().Set(HeaderJob, j.ID)
	switch j.Status() {
	case StatusDone:
		b, rhash := j.Result()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-DiGS-Result-Hash", rhash)
		w.Write(b)
		w.Write([]byte("\n"))
	case StatusFailed, StatusCanceled:
		writeJSON(w, http.StatusGone, j.View(false))
	default:
		s.retryAfter(w)
		writeJSON(w, http.StatusAccepted, j.View(false))
	}
}

// isSpecHash reports whether s is a well-formed spec hash: exactly 64
// lowercase hex characters. ServeMux percent-decodes path values after
// matching, so without this check a {hash} like "..%2F..%2Fetc%2Fx"
// would reach ResultStore.path as "../../etc/x" and escape the store.
func isSpecHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.results == nil {
		writeJSON(w, http.StatusNotFound, apiError{"result store disabled"})
		return
	}
	hash := r.PathValue("hash")
	if !isSpecHash(hash) {
		writeJSON(w, http.StatusNotFound, apiError{"no stored result for that spec hash"})
		return
	}
	b, ok := s.results.Get(hash)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no stored result for that spec hash"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

// handleResultPut installs a canonical result under a spec hash — the
// gateway's read-repair path, re-replicating a result it found on only
// one replica. The body must re-encode canonically (so a truncated or
// hand-mangled upload is refused), its embedded spec_hash must match
// the path (a result valid for spec A cannot be filed under spec B and
// later served as a verified cache hit for B), and an entry already on
// disk is never overwritten with different bytes — read-repair fills
// missing replicas, it does not replace existing ones. The store wraps
// accepted bytes in the usual verification envelope; a degraded store
// refuses with 503 like any other durability failure.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	if s.results == nil {
		writeJSON(w, http.StatusNotFound, apiError{"result store disabled"})
		return
	}
	hash := r.PathValue("hash")
	if !isSpecHash(hash) {
		writeJSON(w, http.StatusBadRequest, apiError{"malformed spec hash"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("reading result: %v", err)})
		return
	}
	body = bytes.TrimSpace(body)
	var res scenario.Result
	if err := json.Unmarshal(body, &res); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding result: %v", err)})
		return
	}
	canonical, err := res.Encode()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if !bytes.Equal(canonical, body) {
		writeJSON(w, http.StatusBadRequest, apiError{"result is not in canonical encoding"})
		return
	}
	if res.SpecHash != hash {
		writeJSON(w, http.StatusBadRequest, apiError{"result's embedded spec_hash does not match the requested hash"})
		return
	}
	if existing, ok := s.results.Get(hash); ok {
		if !bytes.Equal(existing, canonical) {
			writeJSON(w, http.StatusConflict, apiError{"a different result is already stored under that spec hash"})
			return
		}
		w.WriteHeader(http.StatusNoContent) // idempotent repair: already stored
		return
	}
	if err := s.results.Put(hash, canonical); err != nil {
		s.degrade(fmt.Sprintf("result store put: %v", err))
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStream serves the job's telemetry as Server-Sent Events: each
// JSONL line is one "data:" event, replayed from the start of the
// retained window and then followed live; a final "done" event carries
// the job's terminal view. Whenever the subscriber's cursor has fallen
// out of the retention window — at attach or mid-stream on a slow
// client — a "dropped" event reports how many lines the gap swallowed.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{"streaming unsupported"})
		return
	}
	w.Header().Set(HeaderJob, j.ID)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	from := 0
	for {
		lines, next, skipped, closed, wait := j.Stream.Next(from)
		if skipped > 0 {
			if _, err := fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", skipped); err != nil {
				return
			}
		}
		for _, ln := range lines {
			if _, err := fmt.Fprintf(w, "data: %s\n\n", ln); err != nil {
				return
			}
		}
		if skipped > 0 || len(lines) > 0 {
			fl.Flush()
		}
		from = next
		if closed {
			view, _ := json.Marshal(j.View(true))
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", view)
			fl.Flush()
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	degraded, cause := s.DegradedCause()
	s.mu.Lock()
	retrying := len(s.retryTimers)
	s.mu.Unlock()
	st := Stats{
		Submitted:          s.submitted.Load(),
		CacheHits:          s.cacheHits.Load(),
		DedupHits:          s.dedupHits.Load(),
		Completed:          s.completed.Load(),
		Failed:             s.failed.Load(),
		Canceled:           s.canceled.Load(),
		WarmHits:           s.warmHits.Load(),
		RejectedQuota:      s.rejQuota.Load(),
		RejectedQueue:      s.rejQueue.Load(),
		Retries:            s.retries.Load(),
		Recovered:          s.recovered.Load(),
		JournalDroppedTail: s.tailDrop.Load(),
		Queued:             len(s.jobsCh),
		Running:            int(s.running.Load()),
		Retrying:           retrying,
		Draining:           s.draining.Load(),
		Degraded:           degraded,
		DegradedCause:      cause,
	}
	if s.results != nil {
		st.StoredResults = s.results.Len()
	}
	writeJSON(w, http.StatusOK, st)
}
