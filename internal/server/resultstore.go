package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"github.com/digs-net/digs/internal/store"
)

// ResultStore is the content-addressed on-disk result cache: canonical
// result documents keyed by the spec's content hash, fanned out over a
// two-hex-character prefix directory (dir/ab/abcdef….json). Writes are
// atomic, fsync'd, and followed by LRU eviction against the budget;
// reads verify the stored bytes against their recorded content address
// and touch the entry so hot scenarios stay resident.
//
// Each file is an envelope: a one-line header naming the schema and the
// SHA-256 of the result bytes, then the result document itself. Get
// re-hashes the body on every read — a file whose bytes no longer match
// its header (bit rot, a torn write on a pre-envelope store, manual
// tampering) is quarantined by renaming it to <name>.corrupt and
// reported as a miss, so the scenario is re-run instead of a corrupted
// result being served as truth. Quarantined files keep their bytes for
// post-mortems and are invisible to Len and eviction.
type ResultStore struct {
	Dir    string
	Budget store.Budget // zero value = unbounded

	mu sync.Mutex // serialises write+evict cycles
}

// resultSchema versions the stored envelope header.
const resultSchema = "digs-result/v1"

// resultHeader is the first line of every stored result file.
type resultHeader struct {
	Schema     string `json:"schema"`
	ResultHash string `json:"result_hash"`
}

// hashBytes is the content address of a byte string: hex SHA-256.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func (rs *ResultStore) path(hash string) string {
	prefix := "xx"
	if len(hash) >= 2 {
		prefix = hash[:2]
	}
	return filepath.Join(rs.Dir, prefix, hash+".json")
}

// Get returns the cached canonical result for a spec hash, if present
// and intact. Malformed hashes (anything but 64 lowercase hex
// characters) never touch the filesystem — hash is a client-controlled
// path component. A stored file whose body no longer hashes to its
// recorded content address is quarantined and reported as a miss.
func (rs *ResultStore) Get(hash string) ([]byte, bool) {
	if !isSpecHash(hash) {
		return nil, false
	}
	p := rs.path(hash)
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	body, ok := unwrapResult(b)
	if !ok {
		// Quarantine, don't delete: the bytes are evidence. The .corrupt
		// suffix takes the file out of Get/Len/eviction entirely.
		_ = os.Rename(p, p+".corrupt")
		return nil, false
	}
	store.Touch(p)
	return body, true
}

// unwrapResult splits the envelope and checks the content address.
// A file with no header line (written before the envelope format) has
// no recorded hash to verify against and is served as-is; every file
// written by this version carries one.
func unwrapResult(b []byte) ([]byte, bool) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		return b, true
	}
	var hdr resultHeader
	if json.Unmarshal(b[:i], &hdr) != nil || hdr.Schema != resultSchema {
		return b, true
	}
	body := b[i+1:]
	if hashBytes(body) != hdr.ResultHash {
		return nil, false
	}
	return body, true
}

// Put stores a canonical result under its spec hash — wrapped in the
// verification envelope, written atomically and durably — and evicts
// the least-recently-used entries beyond the budget.
func (rs *ResultStore) Put(hash string, result []byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	hdr, err := json.Marshal(resultHeader{Schema: resultSchema, ResultHash: hashBytes(result)})
	if err != nil {
		return err
	}
	env := make([]byte, 0, len(hdr)+1+len(result))
	env = append(env, hdr...)
	env = append(env, '\n')
	env = append(env, result...)
	if err := store.WriteFileAtomic(rs.path(hash), env); err != nil {
		return err
	}
	_, err = store.EvictLRU(rs.Dir, ".json", rs.Budget)
	return err
}

// Len counts stored results (test and stats helper). Quarantined
// .corrupt files are not results.
func (rs *ResultStore) Len() int {
	n := 0
	_ = filepath.WalkDir(rs.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
