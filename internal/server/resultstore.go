package server

import (
	"os"
	"path/filepath"
	"sync"

	"github.com/digs-net/digs/internal/store"
)

// ResultStore is the content-addressed on-disk result cache: canonical
// result documents keyed by the spec's content hash, fanned out over a
// two-hex-character prefix directory (dir/ab/abcdef….json). Writes are
// atomic and followed by LRU eviction against the budget; reads touch
// the entry so hot scenarios stay resident.
type ResultStore struct {
	Dir    string
	Budget store.Budget // zero value = unbounded

	mu sync.Mutex // serialises write+evict cycles
}

func (rs *ResultStore) path(hash string) string {
	prefix := "xx"
	if len(hash) >= 2 {
		prefix = hash[:2]
	}
	return filepath.Join(rs.Dir, prefix, hash+".json")
}

// Get returns the cached canonical result for a spec hash, if present.
// Malformed hashes (anything but 64 lowercase hex characters) never
// touch the filesystem — hash is a client-controlled path component.
func (rs *ResultStore) Get(hash string) ([]byte, bool) {
	if !isSpecHash(hash) {
		return nil, false
	}
	p := rs.path(hash)
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	store.Touch(p)
	return b, true
}

// Put stores a canonical result under its spec hash and evicts the
// least-recently-used entries beyond the budget.
func (rs *ResultStore) Put(hash string, result []byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := store.WriteFileAtomic(rs.path(hash), result); err != nil {
		return err
	}
	_, err := store.EvictLRU(rs.Dir, ".json", rs.Budget)
	return err
}

// Len counts stored results (test and stats helper).
func (rs *ResultStore) Len() int {
	n := 0
	_ = filepath.WalkDir(rs.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
