package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/store"
)

// The journal is the server's durability log: an append-only JSONL file
// of versioned records, one per job lifecycle transition, fsync'd on
// every append. A submission is acknowledged with 202 only after its
// submit record is on disk, so the set of accepted jobs survives
// SIGKILL; on restart the journal is replayed — finished jobs are
// re-registered from the result store, interrupted ones are re-enqueued
// — and compacted, so it carries one submit plus at most one terminal
// record per retained job rather than the full history of the previous
// incarnation.
//
// The record stream is strictly ordered per job (submit, then
// start/retry interleavings, then exactly one terminal op), because
// every append happens either inside the submit critical section or
// from the single worker goroutine that owns the job at that moment.

// journalSchema versions the on-disk record format.
const journalSchema = "digs-journal/v1"

// journalFile is the journal's name under the server's data directory.
const journalFile = "journal.jsonl"

// Journal ops, in lifecycle order.
const (
	opSubmit = "submit" // job accepted; carries tenant, spec hash, full spec
	opStart  = "start"  // a worker began attempt N
	opRetry  = "retry"  // attempt N failed; the job is backing off
	opDone   = "done"   // terminal: result stored; carries the result hash
	opFail   = "fail"   // terminal: dead-lettered after its attempt budget
	opCancel = "cancel" // terminal: evicted from the queue or by shutdown
)

// journalRecord is one JSONL line.
type journalRecord struct {
	Schema     string         `json:"schema"`
	Seq        int64          `json:"seq"`
	Op         string         `json:"op"`
	Job        string         `json:"job"`
	Tenant     string         `json:"tenant,omitempty"`
	SpecHash   string         `json:"spec_hash,omitempty"`
	Spec       *scenario.Spec `json:"spec,omitempty"`
	Attempt    int            `json:"attempt,omitempty"`
	ResultHash string         `json:"result_hash,omitempty"`
	Detail     string         `json:"detail,omitempty"`
}

// journal is the append side: an O_APPEND file handle plus a sequence
// counter, serialised by its own mutex so appends from the submit path
// and the workers interleave as whole records.
type journal struct {
	mu       sync.Mutex
	f        *os.File
	seq      int64
	syncEach bool
}

// openJournal opens (creating if missing) the journal for appending.
func openJournal(path string, syncEach bool) (*journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, syncEach: syncEach}, nil
}

// append writes one record (schema and seq are filled in here) and, in
// sync mode, fsyncs before returning — the record is durable once
// append returns nil.
func (jl *journal) append(rec journalRecord) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.seq++
	rec.Schema = journalSchema
	rec.Seq = jl.seq
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := jl.f.Write(append(b, '\n')); err != nil {
		return err
	}
	if jl.syncEach {
		return jl.f.Sync()
	}
	return nil
}

func (jl *journal) close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}

// replayJournal parses a journal stream, tolerating a damaged tail: a
// SIGKILL (or torn sector) can leave the final append half-written, so
// the first line that is not a well-formed record ends the trusted
// prefix, and everything from there on is dropped and counted rather
// than trusted. Records before the damage are always recovered.
func replayJournal(r io.Reader) (recs []journalRecord, droppedTail int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Schema != journalSchema || rec.Op == "" || rec.Job == "" {
			droppedTail++
			for sc.Scan() {
				droppedTail++
			}
			return recs, droppedTail
		}
		recs = append(recs, rec)
	}
	if sc.Err() != nil {
		// An oversized or unreadable tail line; the prefix stands.
		droppedTail++
	}
	return recs, droppedTail
}

// replayedJob is one job's journal history folded to its latest state.
type replayedJob struct {
	id, tenant, specHash string
	spec                 scenario.Spec
	attempts             int    // attempts already consumed (interrupted ones count)
	op                   string // last op seen
	seq                  int64  // seq of that op, for terminal ordering
	resultHash           string
	detail               string
}

// foldJournal reduces a replayed record stream to per-job state, in
// first-submission order. Records for jobs with no submit record (only
// possible in a hand-damaged or fuzzed journal) are ignored: without
// the spec there is nothing to run and nothing to report.
func foldJournal(recs []journalRecord) []*replayedJob {
	byID := make(map[string]*replayedJob)
	var order []*replayedJob
	for _, rec := range recs {
		switch rec.Op {
		case opSubmit:
			if rec.Spec == nil || byID[rec.Job] != nil {
				continue
			}
			rj := &replayedJob{
				id: rec.Job, tenant: rec.Tenant, specHash: rec.SpecHash,
				spec: *rec.Spec, attempts: rec.Attempt, op: opSubmit, seq: rec.Seq,
			}
			byID[rec.Job] = rj
			order = append(order, rj)
		case opStart, opRetry:
			if rj := byID[rec.Job]; rj != nil && !isTerminalOp(rj.op) {
				rj.op, rj.seq = rec.Op, rec.Seq
				if rec.Attempt > rj.attempts {
					rj.attempts = rec.Attempt
				}
			}
		case opDone, opFail, opCancel:
			if rj := byID[rec.Job]; rj != nil && !isTerminalOp(rj.op) {
				rj.op, rj.seq = rec.Op, rec.Seq
				rj.resultHash = rec.ResultHash
				rj.detail = rec.Detail
			}
		}
	}
	return order
}

func isTerminalOp(op string) bool {
	return op == opDone || op == opFail || op == opCancel
}

// jobIDNum extracts the numeric suffix of a "j-000123" job ID (0 when
// the ID is foreign, which only a tampered journal can produce).
func jobIDNum(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j-"), 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// recovery is the outcome of replaying a journal at startup.
type recovery struct {
	finished []*replayedJob // terminal jobs to re-register, finish order
	pending  []*replayedJob // jobs to re-enqueue, submission order
	maxID    int64          // highest job ID seen (pruned jobs included)
	dropped  int            // damaged tail lines discarded by the replayer
}

// recoverJournal replays the journal at path (a missing file is an
// empty history), folds it against the result store, prunes terminal
// jobs beyond keepFinished, rewrites the journal compacted, and returns
// the recovered state plus the open journal to append to.
//
// A job whose last record is non-terminal was accepted but never
// finished — the previous incarnation crashed with it queued, running,
// or backing off — so it comes back as pending. A done job whose stored
// result no longer verifies against its journaled result hash (missing,
// evicted, or quarantined by ResultStore.Get) also comes back as
// pending: determinism makes re-running it produce the identical bytes.
func recoverJournal(path string, results *ResultStore, keepFinished int, syncEach bool) (*journal, *recovery, error) {
	rec := &recovery{}
	if f, err := os.Open(path); err == nil {
		recs, dropped := replayJournal(f)
		f.Close()
		rec.dropped = dropped
		for _, rj := range foldJournal(recs) {
			if n := jobIDNum(rj.id); n > rec.maxID {
				rec.maxID = n
			}
			switch {
			case rj.op == opDone:
				if verifyStoredResult(results, rj.specHash, rj.resultHash) {
					rec.finished = append(rec.finished, rj)
				} else {
					rec.pending = append(rec.pending, rj)
				}
			case isTerminalOp(rj.op):
				rec.finished = append(rec.finished, rj)
			default:
				rec.pending = append(rec.pending, rj)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	sort.Slice(rec.finished, func(i, j int) bool { return rec.finished[i].seq < rec.finished[j].seq })
	if keepFinished > 0 && len(rec.finished) > keepFinished {
		rec.finished = rec.finished[len(rec.finished)-keepFinished:]
	}

	// Compact: one submit record per retained job (attempts folded in),
	// then the terminal records in finish order, so the next replay
	// rebuilds the same registration and the same finished ordering
	// without rereading the previous incarnation's full history.
	var buf bytes.Buffer
	var seq int64
	add := func(r journalRecord) error {
		seq++
		r.Schema, r.Seq = journalSchema, seq
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		buf.Write(append(b, '\n'))
		return nil
	}
	for _, rj := range append(append([]*replayedJob(nil), rec.finished...), rec.pending...) {
		spec := rj.spec
		if err := add(journalRecord{
			Op: opSubmit, Job: rj.id, Tenant: rj.tenant,
			SpecHash: rj.specHash, Spec: &spec, Attempt: rj.attempts,
		}); err != nil {
			return nil, nil, err
		}
	}
	for _, rj := range rec.finished {
		if err := add(journalRecord{
			Op: rj.op, Job: rj.id, ResultHash: rj.resultHash, Detail: rj.detail,
		}); err != nil {
			return nil, nil, err
		}
	}
	if err := store.WriteFileAtomic(path, buf.Bytes()); err != nil {
		return nil, nil, fmt.Errorf("compacting journal: %w", err)
	}
	jl, err := openJournal(path, syncEach)
	if err != nil {
		return nil, nil, err
	}
	jl.seq = seq
	return jl, rec, nil
}

// verifyStoredResult reports whether the result store still holds bytes
// for specHash that hash to resultHash. Get itself verifies the bytes
// against the stored content address (quarantining on mismatch); the
// extra comparison pins them to the hash the journal promised.
func verifyStoredResult(results *ResultStore, specHash, resultHash string) bool {
	if results == nil || resultHash == "" {
		return false
	}
	b, ok := results.Get(specHash)
	return ok && hashBytes(b) == resultHash
}
