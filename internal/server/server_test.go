package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/scenario"
)

// smallSpec is a fast scenario (~tens of ms): 20 nodes, 10 s window.
func smallSpec(seed int64) scenario.Spec {
	return scenario.Spec{
		Topology: "half-testbed-a", Protocol: "digs", Seed: seed,
		Period: scenario.Duration(2 * time.Second),
		Window: scenario.Duration(10 * time.Second),
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) // second Shutdown in a test that drained itself is a harmless error
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec scenario.Spec, tenant string) (int, map[string]json.RawMessage) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/scenarios", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-DiGS-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, doc
}

func str(t *testing.T, doc map[string]json.RawMessage, key string) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(doc[key], &s); err != nil {
		t.Fatalf("field %q: %v (doc: %v)", key, err, doc)
	}
	return s
}

func waitDone(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	j := s.job(id)
	if j == nil {
		t.Fatalf("no job %s", id)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish (status %s)", id, j.Status())
	}
	return j
}

// streamSSE consumes the job's SSE stream to the final "done" event,
// returning the data lines (the telemetry JSONL) and the done payload.
func streamSSE(t *testing.T, ts *httptest.Server, id string) (lines []string, done string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := "message"
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "done" {
				return lines, data
			}
			if event == "message" {
				lines = append(lines, data)
			}
		case line == "":
			event = "message"
		}
	}
	t.Fatalf("stream ended without a done event (%v)", sc.Err())
	return nil, ""
}

// TestSubmitStreamResult is the end-to-end happy path the issue names:
// submit over HTTP, follow the SSE stream to completion, fetch the
// content-addressed result.
func TestSubmitStreamResult(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	code, doc := submit(t, ts, smallSpec(5), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, doc)
	}
	id := str(t, doc, "job_id")
	specHash := str(t, doc, "spec_hash")

	lines, doneData := streamSSE(t, ts, id)
	if len(lines) == 0 {
		t.Fatal("SSE stream carried no telemetry")
	}
	var schema struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &schema); err != nil || schema.Schema == "" {
		t.Fatalf("first stream line is not the JSONL schema header: %q", lines[0])
	}
	var view View
	if err := json.Unmarshal([]byte(doneData), &view); err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone || view.ResultHash == "" || len(view.Result) == 0 {
		t.Fatalf("done view: %+v", view)
	}

	// The job result endpoint serves the canonical bytes with the hash.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-DiGS-Result-Hash"); got != view.ResultHash {
		t.Fatalf("result hash header %q != done view %q", got, view.ResultHash)
	}

	// And the content-addressed store serves the same bytes by spec hash.
	resp2, err := http.Get(ts.URL + "/v1/results/" + specHash)
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stored result: %d", resp2.StatusCode)
	}
	if !bytes.Equal(bytes.TrimSpace(body), bytes.TrimSpace(body2)) {
		t.Fatalf("job result and stored result differ:\n%s\n%s", body, body2)
	}
	waitDone(t, s, id)
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDuplicateSubmissionServedFromCache: an identical resubmission is a
// content-addressed cache hit — 200 with the stored result, no new job.
func TestDuplicateSubmissionServedFromCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	code, doc := submit(t, ts, smallSpec(7), "")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	j := waitDone(t, s, str(t, doc, "job_id"))
	want, _ := j.Result()

	// Same scenario spelled differently (explicit defaults, shards knob).
	dup := smallSpec(7)
	dup.MacBoost = 1
	dup.JoinFraction = 1.0
	dup.Shards = 4
	code, doc = submit(t, ts, dup, "")
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: %d (%v)", code, doc)
	}
	var cached bool
	if err := json.Unmarshal(doc["cached"], &cached); err != nil || !cached {
		t.Fatalf("duplicate not served from cache: %v", doc)
	}
	if !bytes.Equal(bytes.TrimSpace(doc["result"]), bytes.TrimSpace(want)) {
		t.Fatalf("cached result differs:\n%s\n%s", doc["result"], want)
	}
	if got := s.cacheHits.Load(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

// TestInFlightDedup: two identical submissions while the first is still
// queued collapse onto one job.
func TestInFlightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: WorkersNone})
	code, doc := submit(t, ts, smallSpec(9), "")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	id := str(t, doc, "job_id")
	code, doc = submit(t, ts, smallSpec(9), "")
	if code != http.StatusAccepted {
		t.Fatalf("dup submit: %d", code)
	}
	if got := str(t, doc, "job_id"); got != id {
		t.Fatalf("dedup returned a new job %s (want %s)", got, id)
	}
	var dedup bool
	if err := json.Unmarshal(doc["dedup"], &dedup); err != nil || !dedup {
		t.Fatalf("second submission not marked dedup: %v", doc)
	}
	if got := s.dedupHits.Load(); got != 1 {
		t.Fatalf("dedup hits = %d", got)
	}
}

// TestTenantQuota429: a tenant at its quota is pushed back with 429 and
// Retry-After; other tenants are unaffected.
func TestTenantQuota429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: WorkersNone, TenantQuota: 2, QueueDepth: 16})
	for i := int64(0); i < 2; i++ {
		if code, doc := submit(t, ts, smallSpec(100+i), "alice"); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d (%v)", i, code, doc)
		}
	}
	body, _ := json.Marshal(smallSpec(102))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/scenarios", bytes.NewReader(body))
	req.Header.Set("X-DiGS-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// A different tenant still gets in.
	if code, _ := submit(t, ts, smallSpec(103), "bob"); code != http.StatusAccepted {
		t.Fatalf("other tenant: %d", code)
	}
}

// TestQueueFull429: a full job queue is backpressure, not an error page.
func TestQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: WorkersNone, QueueDepth: 1})
	if code, _ := submit(t, ts, smallSpec(200), ""); code != http.StatusAccepted {
		t.Fatal("first submit should fill the queue")
	}
	body, _ := json.Marshal(smallSpec(201))
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestBadSubmissions: malformed and oversized requests are rejected at
// admission with precise status codes.
func TestBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: WorkersNone, MaxNodes: 500})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d", code)
	}
	if code := post(`{"topology":"half-testbed-a","bogus_field":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: %d", code)
	}
	if code := post(`{"protocol":"tcp"}`); code != http.StatusBadRequest {
		t.Errorf("bad protocol: %d", code)
	}
	if code := post(`{"topology":"gen-plant-1000-1"}`); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over MaxNodes: %d", code)
	}
}

// TestServerMatchesDirectRun: the determinism contract — a server-run
// scenario is bit-identical to running the same spec directly.
func TestServerMatchesDirectRun(t *testing.T) {
	spec := smallSpec(5)
	direct, _, err := scenario.RunSpec(context.Background(), spec, scenario.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Encode()
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{Workers: 1})
	_, doc := submit(t, ts, spec, "")
	j := waitDone(t, s, str(t, doc, "job_id"))
	got, _ := j.Result()
	if !bytes.Equal(got, want) {
		t.Fatalf("server result differs from direct run:\nserver: %s\ndirect: %s", got, want)
	}
}

// TestWarmPoolAcrossWindows: a second scenario sharing the formation
// phase (same deployment/protocol/seed, longer window) warm-starts from
// the pool and still matches a direct cold run bit for bit.
func TestWarmPoolAcrossWindows(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_, doc := submit(t, ts, smallSpec(5), "")
	waitDone(t, s, str(t, doc, "job_id"))
	if s.warmHits.Load() != 0 {
		t.Fatal("first run cannot be a warm hit")
	}

	longer := smallSpec(5)
	longer.Window = scenario.Duration(15 * time.Second)
	_, doc = submit(t, ts, longer, "")
	j := waitDone(t, s, str(t, doc, "job_id"))
	if s.warmHits.Load() != 1 {
		t.Fatalf("warm hits = %d, want 1", s.warmHits.Load())
	}
	got, _ := j.Result()

	direct, _, err := scenario.RunSpec(context.Background(), longer, scenario.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("warm-started server result differs from direct cold run:\nserver: %s\ndirect: %s", got, want)
	}
}

// TestShutdownCancelsQueued: draining cancels jobs the workers never
// picked up and refuses new submissions with 503.
func TestShutdownCancelsQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: WorkersNone, QueueDepth: 8})
	var ids []string
	for i := int64(0); i < 3; i++ {
		_, doc := submit(t, ts, smallSpec(300+i), "")
		ids = append(ids, str(t, doc, "job_id"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain with no in-flight jobs should not hit the deadline: %v", err)
	}
	for _, id := range ids {
		j := waitDone(t, s, id)
		if j.Status() != StatusCanceled {
			t.Errorf("job %s: %s, want canceled", id, j.Status())
		}
	}
	body, _ := json.Marshal(smallSpec(999))
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

// TestShutdownDrainsInFlight: a job already running completes normally
// during a drain with a generous deadline.
func TestShutdownDrainsInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_, doc := submit(t, ts, smallSpec(40), "")
	id := str(t, doc, "job_id")
	// Give the worker a moment to pick the job up, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.job(id).Status() == StatusQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	j := waitDone(t, s, id)
	if st := j.Status(); st != StatusDone {
		t.Fatalf("in-flight job after drain: %s, want done", st)
	}
}

// TestStatsEndpoint: counters show up on /v1/stats.
func TestStatsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_, doc := submit(t, ts, smallSpec(50), "")
	waitDone(t, s, str(t, doc, "job_id"))
	submit(t, ts, smallSpec(50), "") // cache hit

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Submitted != 2 || st.Completed != 1 || st.CacheHits != 1 || st.StoredResults != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestResultHashValidation: GET /v1/results/{hash} only ever touches the
// store for well-formed spec hashes. ServeMux percent-decodes the path
// value after matching, so ..%2F sequences arrive as real "../" path
// components — they must be rejected before reaching the filesystem.
func TestResultHashValidation(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: WorkersNone, DataDir: dataDir})

	// A .json file outside the result store that a traversal would reach:
	// with hash "a/../../../secret", ResultStore.path joins
	// results/a/ + a/../../../secret.json, which cleans to
	// dataDir/secret.json.
	secret := filepath.Join(dataDir, "secret.json")
	if err := os.WriteFile(secret, []byte(`{"leak":true}`), 0o644); err != nil {
		t.Fatal(err)
	}

	get := func(rawHash string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/results/" + rawHash)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("a%2F..%2F..%2F..%2Fsecret"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal hash: %d, want 404", resp.StatusCode)
	}
	for _, h := range []string{
		"abc",                             // too short
		strings.Repeat("A", 64),           // uppercase
		strings.Repeat("z", 64),           // not hex
		"..%2F" + strings.Repeat("a", 61), // traversal padded to 64 decoded chars
	} {
		if resp := get(h); resp.StatusCode != http.StatusNotFound {
			t.Errorf("hash %q: %d, want 404", h, resp.StatusCode)
		}
	}
	// The decoy must still be untouched and unserved.
	if b, err := os.ReadFile(secret); err != nil || string(b) != `{"leak":true}` {
		t.Fatalf("decoy file changed: %q, %v", b, err)
	}

	// ResultStore.Get itself refuses malformed hashes too.
	rs := &ResultStore{Dir: filepath.Join(dataDir, "results")}
	if _, ok := rs.Get("../secret"); ok {
		t.Fatal("ResultStore.Get served a traversal path")
	}
}

// TestFinishedJobPruning: terminal jobs beyond FinishedJobCap are
// forgotten oldest-first, so s.jobs stays bounded on a long-running
// daemon while the newest finished jobs remain addressable.
func TestFinishedJobPruning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, FinishedJobCap: 2})
	var ids []string
	for i := int64(0); i < 3; i++ {
		code, doc := submit(t, ts, smallSpec(400+i), "")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d (%v)", i, code, doc)
		}
		id := str(t, doc, "job_id")
		waitDone(t, s, id)
		ids = append(ids, id)
	}
	status := func(id string) int {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := status(ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest finished job still addressable: %d, want 404", code)
	}
	for _, id := range ids[1:] {
		if code := status(id); code != http.StatusOK {
			t.Errorf("recent finished job %s: %d, want 200", id, code)
		}
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("len(s.jobs) = %d, want 2", n)
	}
}

// TestBroadcastWriterSemantics covers the SSE fan-out buffer directly:
// fragment assembly, bounded retention, replay and close.
func TestBroadcastWriterSemantics(t *testing.T) {
	b := NewBroadcast(3)
	fmt.Fprint(b, "alpha\nbe")
	fmt.Fprint(b, "ta\n")
	lines, next, skipped, closed, _ := b.Next(0)
	if len(lines) != 2 || string(lines[0]) != "alpha" || string(lines[1]) != "beta" || skipped != 0 || closed {
		t.Fatalf("lines %q skipped=%d closed=%v", lines, skipped, closed)
	}
	fmt.Fprint(b, "gamma\ndelta\nepsilon\n") // overflows max=3, drops alpha+beta
	if d := b.Dropped(); d != 2 {
		t.Fatalf("dropped = %d, want 2", d)
	}
	// The subscriber's cursor (next=2) is exactly at the window start, so
	// no mid-stream gap is reported for it.
	lines, next, skipped, _, _ = b.Next(next)
	if len(lines) != 3 || string(lines[0]) != "gamma" || skipped != 0 {
		t.Fatalf("after overflow: %q skipped=%d", lines, skipped)
	}
	fmt.Fprint(b, "tail-no-newline")
	b.Close()
	lines, _, _, closed, _ = b.Next(next)
	if !closed || len(lines) != 1 || string(lines[0]) != "tail-no-newline" {
		t.Fatalf("close: %q closed=%v", lines, closed)
	}
	// Writes after close are swallowed, not errors (late tracer flush).
	if n, err := b.Write([]byte("late\n")); n != 5 || err != nil {
		t.Fatalf("write after close: %d, %v", n, err)
	}
}

// TestBroadcastLiveFollow: a subscriber blocked on the signal channel
// wakes when the writer publishes.
func TestBroadcastLiveFollow(t *testing.T) {
	b := NewBroadcast(0)
	_, next, _, _, wait := b.Next(0)
	go func() {
		time.Sleep(10 * time.Millisecond)
		fmt.Fprint(b, "live\n")
		b.Close()
	}()
	select {
	case <-wait:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never woke")
	}
	lines, _, _, _, _ := b.Next(next)
	if len(lines) != 1 || string(lines[0]) != "live" {
		t.Fatalf("live follow got %q", lines)
	}
}

// TestBroadcastLaggingSubscriberGap: a follower whose cursor has fallen
// behind the retention window learns the exact gap size from Next, both
// at attach (from=0) and mid-stream — not only on initial subscribe.
func TestBroadcastLaggingSubscriberGap(t *testing.T) {
	b := NewBroadcast(2)
	fmt.Fprint(b, "l1\nl2\nl3\nl4\n") // window now holds l3,l4; first=2
	lines, next, skipped, _, _ := b.Next(0)
	if skipped != 2 || len(lines) != 2 || string(lines[0]) != "l3" {
		t.Fatalf("attach: lines %q skipped=%d", lines, skipped)
	}
	// The follower stalls while four more lines push the window past its
	// cursor: l5,l6 fall out before it resumes.
	fmt.Fprint(b, "l5\nl6\nl7\nl8\n") // window l7,l8; first=6
	lines, _, skipped, _, _ = b.Next(next)
	if skipped != 2 || len(lines) != 2 || string(lines[0]) != "l7" {
		t.Fatalf("mid-stream: lines %q skipped=%d", lines, skipped)
	}
}
