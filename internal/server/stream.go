package server

import (
	"bytes"
	"sync"
)

// Broadcast is a per-job telemetry fan-out: the job's JSONL tracer writes
// lines into it from the worker goroutine, and any number of SSE
// subscribers replay the stream from the beginning and then follow it
// live. It implements io.Writer so it can sit directly under a
// telemetry.JSONL sink.
//
// The buffer is bounded: past maxLines the oldest lines are dropped (the
// Dropped count tells late subscribers how much history they missed).
// Lines are copied on entry — the JSONL sink reuses its scratch buffer.
type Broadcast struct {
	mu      sync.Mutex
	lines   [][]byte
	partial []byte
	first   int // logical index of lines[0]
	max     int
	closed  bool
	signal  chan struct{} // closed and replaced on every append/Close
}

// NewBroadcast returns a broadcast buffer holding at most maxLines lines
// (<= 0 means a generous default).
func NewBroadcast(maxLines int) *Broadcast {
	if maxLines <= 0 {
		maxLines = 1 << 17
	}
	return &Broadcast{max: maxLines, signal: make(chan struct{})}
}

// Write implements io.Writer: input is split into lines; complete lines
// are published, a trailing fragment is buffered until its newline
// arrives.
func (b *Broadcast) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		// A write after Close (e.g. a late Flush) has nowhere to go.
		return len(p), nil
	}
	data := p
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			b.partial = append(b.partial, data...)
			break
		}
		line := make([]byte, 0, len(b.partial)+i)
		line = append(line, b.partial...)
		line = append(line, data[:i]...)
		b.partial = b.partial[:0]
		b.lines = append(b.lines, line)
		data = data[i+1:]
	}
	if over := len(b.lines) - b.max; over > 0 {
		b.lines = append([][]byte(nil), b.lines[over:]...)
		b.first += over
	}
	b.wake()
	return len(p), nil
}

// Close marks the stream complete (an unterminated final fragment is
// published as its own line) and wakes every subscriber.
func (b *Broadcast) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if len(b.partial) > 0 {
		b.lines = append(b.lines, append([]byte(nil), b.partial...))
		b.partial = nil
	}
	b.closed = true
	b.wake()
}

// wake must be called with mu held.
func (b *Broadcast) wake() {
	close(b.signal)
	b.signal = make(chan struct{})
}

// Next returns every published line with logical index >= from, the next
// logical index to resume at, how many lines between from and the first
// returned line fell out of the retention window (a lagging subscriber's
// gap), whether the stream is complete, and a channel that closes on the
// next publication (for blocking waits). A from older than the retained
// window resumes at the window start, with the gap size in skipped so
// followers can surface the loss instead of silently snapping forward.
func (b *Broadcast) Next(from int) (lines [][]byte, next, skipped int, closed bool, wait <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < b.first {
		skipped = b.first - from
		from = b.first
	}
	if off := from - b.first; off < len(b.lines) {
		lines = b.lines[off:]
	}
	return lines, from + len(lines), skipped, b.closed, b.signal
}

// Dropped returns how many lines fell out of the retention window.
func (b *Broadcast) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.first
}
