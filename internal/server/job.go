package server

import (
	"encoding/json"
	"sync"
	"time"

	"github.com/digs-net/digs/internal/scenario"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is simulating it.
	StatusRunning Status = "running"
	// StatusRetrying: the last attempt failed or panicked; the job is
	// backing off before re-entering the queue.
	StatusRetrying Status = "retrying"
	// StatusDone: completed; the result is available.
	StatusDone Status = "done"
	// StatusFailed: terminal (dead letter) — every attempt in the
	// budget errored or panicked.
	StatusFailed Status = "failed"
	// StatusCanceled: evicted from the queue or aborted by shutdown.
	StatusCanceled Status = "canceled"
)

// Job is one admitted scenario submission moving through the queue.
type Job struct {
	ID       string
	Tenant   string
	SpecHash string
	Spec     scenario.Spec
	Stream   *Broadcast

	mu         sync.Mutex
	status     Status
	attempts   int // run attempts consumed (interrupted attempts count)
	submitted  time.Time
	started    time.Time
	finished   time.Time
	warmHit    bool
	result     []byte // canonical result encoding (done only)
	resultHash string
	errMsg     string
	done       chan struct{}
}

func newJob(id, tenant, specHash string, spec scenario.Spec, maxStreamLines int) *Job {
	return &Job{
		ID: id, Tenant: tenant, SpecHash: specHash, Spec: spec,
		Stream:    NewBroadcast(maxStreamLines),
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// beginAttempt consumes one run attempt and returns its 1-based number.
func (j *Job) beginAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts++
	return j.attempts
}

// Attempts returns how many run attempts the job has consumed.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// setAttempts restores the consumed-attempt count on journal replay.
func (j *Job) setAttempts(n int) {
	j.mu.Lock()
	j.attempts = n
	j.mu.Unlock()
}

func (j *Job) markRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.mu.Unlock()
}

// markRetrying parks the job between failed attempts; the last error is
// kept visible on the status view while the job backs off.
func (j *Job) markRetrying(msg string) {
	j.mu.Lock()
	j.status = StatusRetrying
	j.errMsg = msg
	j.mu.Unlock()
}

// markQueued returns the job to the queue after its backoff.
func (j *Job) markQueued() {
	j.mu.Lock()
	j.status = StatusQueued
	j.mu.Unlock()
}

func (j *Job) markDone(result []byte, resultHash string, warmHit bool) {
	j.mu.Lock()
	j.status = StatusDone
	j.result = result
	j.resultHash = resultHash
	j.warmHit = warmHit
	j.errMsg = "" // a recovered retry's stale error must not outlive success
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) markFailed(msg string) {
	j.mu.Lock()
	j.status = StatusFailed
	j.errMsg = msg
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) markCanceled(msg string) {
	j.mu.Lock()
	j.status = StatusCanceled
	j.errMsg = msg
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Result returns the canonical result bytes and hash (nil until done).
func (j *Job) Result() ([]byte, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.resultHash
}

// View is the JSON shape of a job's status.
type View struct {
	JobID      string          `json:"job_id"`
	SpecHash   string          `json:"spec_hash"`
	Tenant     string          `json:"tenant"`
	Status     Status          `json:"status"`
	Attempts   int             `json:"attempts,omitempty"`
	WarmStart  bool            `json:"warm_start"`
	Error      string          `json:"error,omitempty"`
	ResultHash string          `json:"result_hash,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	QueuedMs   float64         `json:"queued_ms"`
	RunMs      float64         `json:"run_ms,omitempty"`
}

// View snapshots the job for the status and stream endpoints;
// includeResult inlines the canonical result when done.
func (j *Job) View(includeResult bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		JobID:      j.ID,
		SpecHash:   j.SpecHash,
		Tenant:     j.Tenant,
		Status:     j.status,
		Attempts:   j.attempts,
		WarmStart:  j.warmHit,
		Error:      j.errMsg,
		ResultHash: j.resultHash,
	}
	switch {
	case !j.started.IsZero():
		v.QueuedMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	case !j.finished.IsZero(): // canceled straight out of the queue
		v.QueuedMs = float64(j.finished.Sub(j.submitted)) / float64(time.Millisecond)
	default:
		v.QueuedMs = float64(time.Since(j.submitted)) / float64(time.Millisecond)
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		v.RunMs = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	if includeResult && j.status == StatusDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}
