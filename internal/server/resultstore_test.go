package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestResultStoreQuarantine(t *testing.T) {
	rs := &ResultStore{Dir: t.TempDir()}
	hash := hashBytes([]byte("the-spec"))
	result := []byte(`{"schema":"digs-scenario-result/v1","value":42}`)
	if err := rs.Put(hash, result); err != nil {
		t.Fatal(err)
	}
	if got, ok := rs.Get(hash); !ok || !bytes.Equal(got, result) {
		t.Fatalf("round-trip: ok=%v got=%q", ok, got)
	}

	// Flip one body byte on disk, keeping the envelope header intact.
	p := rs.path(hash)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x01
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := rs.Get(hash); ok {
		t.Fatalf("corrupted result served as a hit")
	}
	if _, err := os.Stat(p + ".corrupt"); err != nil {
		t.Fatalf("corrupted file not quarantined: %v", err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupted file still at its content address: %v", err)
	}
	if n := rs.Len(); n != 0 {
		t.Fatalf("quarantined file still counted: Len()=%d", n)
	}
	// A re-run can repopulate the address.
	if err := rs.Put(hash, result); err != nil {
		t.Fatal(err)
	}
	if got, ok := rs.Get(hash); !ok || !bytes.Equal(got, result) {
		t.Fatalf("repopulated round-trip: ok=%v got=%q", ok, got)
	}
}

// TestResultStoreLegacyFile: a pre-envelope file (no header line) has
// no recorded content address to check — it is served as-is.
func TestResultStoreLegacyFile(t *testing.T) {
	rs := &ResultStore{Dir: t.TempDir()}
	hash := hashBytes([]byte("legacy-spec"))
	legacy := []byte(`{"schema":"digs-scenario-result/v1","old":true}`)
	p := rs.path(hash)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := rs.Get(hash); !ok || !bytes.Equal(got, legacy) {
		t.Fatalf("legacy file: ok=%v got=%q", ok, got)
	}
}
