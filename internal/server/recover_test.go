package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/scenario"
)

// abandonedServer builds a server the test will never Shutdown — the
// in-process stand-in for a process that was SIGKILLed. Its HTTP
// listener is closed, but its journal file handle and job table are
// simply dropped on the floor, exactly like a dead process's.
func abandonedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalFile)
	jl, err := openJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(1)
	want := []journalRecord{
		{Op: opSubmit, Job: "j-000001", Tenant: "acme", SpecHash: strings.Repeat("ab", 32), Spec: &spec},
		{Op: opStart, Job: "j-000001", Attempt: 1},
		{Op: opRetry, Job: "j-000001", Attempt: 1, Detail: "boom"},
		{Op: opStart, Job: "j-000001", Attempt: 2},
		{Op: opDone, Job: "j-000001", ResultHash: strings.Repeat("cd", 32)},
	}
	for _, rec := range want {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, dropped := replayJournal(f)
	if dropped != 0 {
		t.Fatalf("clean journal dropped %d lines", dropped)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Schema != journalSchema || rec.Seq != int64(i+1) {
			t.Fatalf("record %d: schema %q seq %d", i, rec.Schema, rec.Seq)
		}
		if rec.Op != want[i].Op || rec.Job != want[i].Job || rec.Attempt != want[i].Attempt {
			t.Fatalf("record %d: got %+v want %+v", i, rec, want[i])
		}
	}
	if got[0].Spec == nil || got[0].Spec.Seed != spec.Seed {
		t.Fatalf("submit record lost its spec: %+v", got[0].Spec)
	}
}

func TestJournalReplayTruncatedTail(t *testing.T) {
	spec := smallSpec(2)
	var buf bytes.Buffer
	for i, rec := range []journalRecord{
		{Op: opSubmit, Job: "j-000001", SpecHash: strings.Repeat("ab", 32), Spec: &spec},
		{Op: opStart, Job: "j-000001", Attempt: 1},
	} {
		rec.Schema = journalSchema
		rec.Seq = int64(i + 1)
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(append(b, '\n'))
	}
	intact := buf.Len()

	cases := []struct {
		name string
		tail string
		drop int
	}{
		{"half-written json", `{"schema":"digs-journal/v1","seq":3,"op":"do`, 1},
		{"binary garbage", "\x00\xff\xfe garbage\n", 1},
		{"wrong schema", `{"schema":"other/v9","seq":3,"op":"done","job":"j-000001"}` + "\n", 1},
		{"garbage then more lines", "not json\n{\"also\":\"dropped\"}\nmore\n", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			damaged := append(append([]byte(nil), buf.Bytes()[:intact]...), tc.tail...)
			recs, dropped := replayJournal(bytes.NewReader(damaged))
			if len(recs) != 2 {
				t.Fatalf("trusted prefix: got %d records, want 2", len(recs))
			}
			if dropped != tc.drop {
				t.Fatalf("dropped %d lines, want %d", dropped, tc.drop)
			}
			if recs[0].Op != opSubmit || recs[1].Op != opStart {
				t.Fatalf("prefix corrupted: %+v", recs)
			}
		})
	}
}

func FuzzJournalReplay(f *testing.F) {
	spec := smallSpec(3)
	b, _ := json.Marshal(journalRecord{
		Schema: journalSchema, Seq: 1, Op: opSubmit, Job: "j-000001",
		SpecHash: strings.Repeat("ab", 32), Spec: &spec,
	})
	f.Add(append(b, '\n'))
	f.Add([]byte(""))
	f.Add([]byte("{}\n"))
	f.Add([]byte("\x00\x01\x02"))
	f.Add(append(append([]byte(nil), append(b, '\n')...), []byte("garbage tail")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, dropped := replayJournal(bytes.NewReader(data))
		if dropped < 0 {
			t.Fatalf("negative dropped count %d", dropped)
		}
		for i, rec := range recs {
			if rec.Schema != journalSchema || rec.Op == "" || rec.Job == "" {
				t.Fatalf("record %d escaped validation: %+v", i, rec)
			}
		}
		// Folding arbitrary surviving records must never panic and must
		// keep per-job state terminal-once.
		for _, rj := range foldJournal(recs) {
			if rj.id == "" {
				t.Fatalf("folded job without an ID")
			}
		}
		// A valid record prepended to the fuzz input is always trusted.
		withPrefix := append(append([]byte(nil), append(b, '\n')...), data...)
		prefixed, _ := replayJournal(bytes.NewReader(withPrefix))
		if len(prefixed) == 0 || prefixed[0].Op != opSubmit || prefixed[0].Job != "j-000001" {
			t.Fatalf("valid first record not recovered (got %d records)", len(prefixed))
		}
	})
}

// TestRecoverPendingRerun is the heart of the crash-safety contract:
// jobs accepted but never run (the worker pool is empty, standing in
// for a crash) come back on restart, run to completion, and produce
// bytes bit-identical to an uninterrupted run of the same spec.
func TestRecoverPendingRerun(t *testing.T) {
	dataDir := t.TempDir()
	_, ts1 := abandonedServer(t, Config{Workers: WorkersNone, DataDir: dataDir})
	specs := []scenario.Spec{smallSpec(101), smallSpec(102)}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		code, doc := submit(t, ts1, spec, "acme")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		ids[i] = str(t, doc, "job_id")
	}
	ts1.Close() // the "crash": no Shutdown, no journal close, jobs queued

	s2, _ := newTestServer(t, Config{Workers: 2, DataDir: dataDir})
	for i, id := range ids {
		j := waitDone(t, s2, id)
		if got := j.Status(); got != StatusDone {
			t.Fatalf("recovered job %s: status %s (%s)", id, got, j.View(false).Error)
		}
		gotBytes, gotHash := j.Result()

		direct, _, err := scenario.RunSpec(context.Background(), specs[i], scenario.RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, want) {
			t.Fatalf("recovered job %s result differs from uninterrupted run", id)
		}
		if gotHash != hashBytes(want) {
			t.Fatalf("recovered job %s hash %s, want %s", id, gotHash, hashBytes(want))
		}
		if s2.quota.inUse("acme") != 0 {
			t.Fatalf("recovered tenant quota not released: %d in use", s2.quota.inUse("acme"))
		}
	}
	if got := s2.recovered.Load(); got != int64(len(ids)) {
		t.Fatalf("recovered stat %d, want %d", got, len(ids))
	}
	// New submissions must not collide with recovered IDs.
	_, ts2port := newTestServerHTTP(t, s2)
	code, doc := submit(t, ts2port, smallSpec(103), "")
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: HTTP %d", code)
	}
	if id := str(t, doc, "job_id"); id == ids[0] || id == ids[1] {
		t.Fatalf("job ID %s reused after recovery", id)
	}
}

// newTestServerHTTP wraps an existing server in an httptest listener.
func newTestServerHTTP(t *testing.T, s *Server) (*Server, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestRecoverDoneJobs: terminal jobs come back addressable with their
// verified result bytes, not re-enqueued.
func TestRecoverDoneJobs(t *testing.T) {
	dataDir := t.TempDir()
	s1, ts1 := abandonedServer(t, Config{Workers: 2, DataDir: dataDir})
	spec := smallSpec(111)
	code, doc := submit(t, ts1, spec, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := str(t, doc, "job_id")
	j1 := waitDone(t, s1, id)
	wantBytes, wantHash := j1.Result()
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{Workers: 2, DataDir: dataDir})
	j2 := s2.job(id)
	if j2 == nil {
		t.Fatalf("done job %s forgotten across restart", id)
	}
	if j2.Status() != StatusDone {
		t.Fatalf("recovered done job has status %s", j2.Status())
	}
	gotBytes, gotHash := j2.Result()
	if !bytes.Equal(gotBytes, wantBytes) || gotHash != wantHash {
		t.Fatalf("recovered done job result changed across restart")
	}
	if got := s2.recovered.Load(); got != 0 {
		t.Fatalf("done job counted as recovered-pending: %d", got)
	}
	// And the content-addressed fast path still fires for its spec.
	code, doc = submit(t, ts2, spec, "")
	if code != http.StatusOK {
		t.Fatalf("resubmit after restart: HTTP %d (%v)", code, doc)
	}
}

// TestRecoverTruncatedTail: a half-written final record (torn by the
// crash) is dropped and counted; everything before it is recovered.
func TestRecoverTruncatedTail(t *testing.T) {
	dataDir := t.TempDir()
	_, ts1 := abandonedServer(t, Config{Workers: WorkersNone, DataDir: dataDir})
	code, doc := submit(t, ts1, smallSpec(121), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := str(t, doc, "job_id")
	ts1.Close()

	jp := filepath.Join(dataDir, journalFile)
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"digs-journal/v1","seq":99,"op":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, _ := newTestServer(t, Config{Workers: 2, DataDir: dataDir})
	if got := s2.tailDrop.Load(); got != 1 {
		t.Fatalf("dropped-tail stat %d, want 1", got)
	}
	j := waitDone(t, s2, id)
	if j.Status() != StatusDone {
		t.Fatalf("job before the torn tail: status %s", j.Status())
	}
}

// failSeed is the poisoned-spec marker the runFn test seams key on.
const failSeed = 666

func seededRunFn(failures *atomic.Int64, failFor int64, mode string) func(context.Context, scenario.Spec, scenario.RunOpts) (*scenario.Result, scenario.RunInfo, error) {
	return func(ctx context.Context, spec scenario.Spec, opts scenario.RunOpts) (*scenario.Result, scenario.RunInfo, error) {
		if spec.Seed == failFor {
			failures.Add(1)
			if mode == "panic" {
				panic(fmt.Sprintf("poisoned spec seed=%d", spec.Seed))
			}
			return nil, scenario.RunInfo{}, fmt.Errorf("injected failure #%d", failures.Load())
		}
		return scenario.RunSpec(ctx, spec, opts)
	}
}

// TestRetryBackoffStateMachine: two injected failures, then the real
// executor — the job must come out done on its third attempt, with the
// retry counter showing both backoffs.
func TestRetryBackoffStateMachine(t *testing.T) {
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 1, MaxAttempts: 3,
		RetryBase: 5 * time.Millisecond, RetryCap: 20 * time.Millisecond,
		runFn: func(ctx context.Context, spec scenario.Spec, opts scenario.RunOpts) (*scenario.Result, scenario.RunInfo, error) {
			if calls.Add(1) <= 2 {
				return nil, scenario.RunInfo{}, fmt.Errorf("transient failure %d", calls.Load())
			}
			return scenario.RunSpec(ctx, spec, opts)
		},
	})
	code, doc := submit(t, ts, smallSpec(131), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	j := waitDone(t, s, str(t, doc, "job_id"))
	if j.Status() != StatusDone {
		t.Fatalf("status %s (%s), want done", j.Status(), j.View(false).Error)
	}
	if got := j.Attempts(); got != 3 {
		t.Fatalf("attempts %d, want 3", got)
	}
	if got := s.retries.Load(); got != 2 {
		t.Fatalf("retries stat %d, want 2", got)
	}
	if v := j.View(false); v.Error != "" {
		t.Fatalf("done job still reports error %q", v.Error)
	}
}

// TestRetryDeadLetter: a spec that fails every attempt is dead-lettered
// as failed after its budget — and the pool survives to run other work.
func TestRetryDeadLetter(t *testing.T) {
	var failures atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 1, MaxAttempts: 2,
		RetryBase: 5 * time.Millisecond, RetryCap: 20 * time.Millisecond,
		runFn: seededRunFn(&failures, failSeed, "error"),
	})
	code, doc := submit(t, ts, smallSpec(failSeed), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	poisoned := waitDone(t, s, str(t, doc, "job_id"))
	if poisoned.Status() != StatusFailed {
		t.Fatalf("poisoned job status %s, want failed", poisoned.Status())
	}
	if got := failures.Load(); got != 2 {
		t.Fatalf("poisoned spec ran %d times, want exactly its budget of 2", got)
	}
	if v := poisoned.View(false); !strings.Contains(v.Error, "injected failure") || v.Attempts != 2 {
		t.Fatalf("dead-letter view: %+v", v)
	}
	if got := s.failed.Load(); got != 1 {
		t.Fatalf("failed stat %d, want 1", got)
	}

	// The server is alive and healthy for everyone else.
	code, doc = submit(t, ts, smallSpec(132), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit after dead-letter: HTTP %d", code)
	}
	if j := waitDone(t, s, str(t, doc, "job_id")); j.Status() != StatusDone {
		t.Fatalf("healthy job after dead-letter: %s", j.Status())
	}
}

// TestPanicIsolation: a panicking spec is indistinguishable from a
// failing one — dead-lettered with the panic message, stack preserved
// on its stream, daemon and neighbors unharmed.
func TestPanicIsolation(t *testing.T) {
	var failures atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 2, MaxAttempts: 2,
		RetryBase: 5 * time.Millisecond, RetryCap: 20 * time.Millisecond,
		runFn: seededRunFn(&failures, failSeed, "panic"),
	})
	code, doc := submit(t, ts, smallSpec(failSeed), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := str(t, doc, "job_id")
	j := waitDone(t, s, id)
	if j.Status() != StatusFailed {
		t.Fatalf("panicking job status %s, want failed", j.Status())
	}
	if v := j.View(false); !strings.Contains(v.Error, "worker panic") {
		t.Fatalf("dead-letter error %q does not name the panic", v.Error)
	}
	lines, _ := streamSSE(t, ts, id)
	var sawStack bool
	for _, ln := range lines {
		if strings.Contains(ln, "worker_panic") && strings.Contains(ln, "stack") {
			sawStack = true
		}
	}
	if !sawStack {
		t.Fatalf("panic stack missing from the job's telemetry stream (%d lines)", len(lines))
	}

	code, doc = submit(t, ts, smallSpec(133), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit after panic: HTTP %d", code)
	}
	if jj := waitDone(t, s, str(t, doc, "job_id")); jj.Status() != StatusDone {
		t.Fatalf("healthy job after panic: %s", jj.Status())
	}
}

// TestDegradedMode: when the result store can no longer be written the
// server finishes in-flight work but flips degraded — readyz 503 (while
// healthz stays 200: the process is alive, just not routable), new
// submissions shed with 503 + Retry-After, stats say why.
func TestDegradedMode(t *testing.T) {
	dataDir := t.TempDir()
	// A regular file where the results directory must go makes every
	// store write fail with ENOTDIR — the portable stand-in for ENOSPC.
	if err := os.WriteFile(filepath.Join(dataDir, "results"), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, DataDir: dataDir})

	code, doc := submit(t, ts, smallSpec(141), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	j := waitDone(t, s, str(t, doc, "job_id"))
	if j.Status() != StatusDone {
		t.Fatalf("in-flight job during degradation: %s (%s)", j.Status(), j.View(false).Error)
	}

	degraded, cause := s.DegradedCause()
	if !degraded || !strings.Contains(cause, "result store put") {
		t.Fatalf("degraded=%v cause=%q after store write failure", degraded, cause)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz: HTTP %d, want 503", resp.StatusCode)
	}
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz: HTTP %d, want 200 (liveness is not readiness)", live.StatusCode)
	}

	code, doc = submit(t, ts, smallSpec(142), "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded submit: HTTP %d (%v), want 503", code, doc)
	}
	if !strings.Contains(str(t, doc, "error"), "degraded") {
		t.Fatalf("degraded submit error %q", str(t, doc, "error"))
	}

	var st Stats
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if !st.Degraded || st.DegradedCause == "" {
		t.Fatalf("stats hide the degradation: %+v", st)
	}
}

// TestDegradedStickyFirstCause: the first cause wins and the state
// survives later, different failures.
func TestDegradedStickyFirstCause(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: WorkersNone})
	s.degrade("first cause")
	s.degrade("second cause")
	degraded, cause := s.DegradedCause()
	if !degraded || cause != "first cause" {
		t.Fatalf("degraded=%v cause=%q, want sticky first cause", degraded, cause)
	}
}

func TestRetryDelayBounds(t *testing.T) {
	const base, cp = 100 * time.Millisecond, 2 * time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		full := base
		for i := 1; i < attempt && full < cp; i++ {
			full *= 2
		}
		if full > cp {
			full = cp
		}
		for i := 0; i < 200; i++ {
			d := retryDelay(base, cp, attempt)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}
