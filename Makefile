GO ?= go

.PHONY: ci vet build test race fuzz bench-smoke trace-smoke trace-golden snap-smoke scale-smoke controller-smoke server-smoke recover-smoke gateway-smoke bench-scale bench-gate bench-server bench-controller baseline bench-warmstart clean

## ci: everything the driver checks — vet, build, race-enabled tests, a
## short fuzz pass over the wire codecs, a one-shot large-scale benchmark
## smoke run, the telemetry pipeline smoke test, the snapshot round-trip
## smoke test, a short 10k-node run on the sparse sharded engine, the
## controller-layer smoke (four-way chaos with recovery asserted), the
## simulation-service end-to-end smoke, the crash-recovery smoke, and the
## gateway fault-tolerance smoke.
ci: vet build race fuzz bench-smoke trace-smoke snap-smoke scale-smoke controller-smoke server-smoke recover-smoke gateway-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: brief native-fuzzing passes over the frame and routing-payload
## codecs (go test allows one -fuzz pattern per package invocation).
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME) ./internal/mac
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalJoinIn -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalJoinedCallback -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzScanJSONL -fuzztime=$(FUZZTIME) ./internal/telemetry
	$(GO) test -run='^$$' -fuzz=FuzzDecodeSnapshot -fuzztime=$(FUZZTIME) ./internal/snapshot
	$(GO) test -run='^$$' -fuzz=FuzzGenerate -fuzztime=$(FUZZTIME) ./internal/topology
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/server

## bench-smoke: run the heaviest benchmark once to catch bit-rot without
## paying for a full measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkFig12LargeScale -benchtime=1x .

## trace-smoke: run a short Figure 4 slice with packet-lifecycle tracing
## on, replay the trace through digs-trace, and diff the report against the
## checked-in golden — catches schema drift, nondeterminism and broken hook
## points in one pass.
TRACE_SMOKE_JSONL := $(if $(TMPDIR),$(TMPDIR),/tmp)/digs-trace-smoke.jsonl
trace-smoke:
	$(GO) run ./cmd/digs-bench -fig 4 -smoke -seed 42 -trace $(TRACE_SMOKE_JSONL) >/dev/null
	$(GO) run ./cmd/digs-trace -per-flow $(TRACE_SMOKE_JSONL) | diff -u testdata/trace_smoke_golden.txt -
	@echo trace-smoke: OK

## trace-golden: regenerate the trace-smoke golden report after an
## intentional schema or instrumentation change.
trace-golden:
	$(GO) run ./cmd/digs-bench -fig 4 -smoke -seed 42 -trace $(TRACE_SMOKE_JSONL) >/dev/null
	$(GO) run ./cmd/digs-trace -per-flow $(TRACE_SMOKE_JSONL) > testdata/trace_smoke_golden.txt

## snap-smoke: prove checkpoint/restore bit-identity across processes —
## snapshot a half-formed network, resume it for 2000 more slots, and
## byte-compare the result against a straight-through run that never
## stopped (labels must match: the label is part of the snapshot).
SNAP_SMOKE_DIR := $(if $(TMPDIR),$(TMPDIR),/tmp)/digs-snap-smoke
snap-smoke:
	rm -rf $(SNAP_SMOKE_DIR) && mkdir -p $(SNAP_SMOKE_DIR)
	$(GO) run ./cmd/digs-snap take -topology half-testbed-a -protocol digs -seed 9 \
		-slots 3000 -o $(SNAP_SMOKE_DIR)/mid.snap >/dev/null
	$(GO) run ./cmd/digs-snap resume -snap $(SNAP_SMOKE_DIR)/mid.snap -slots 2000 \
		-label golden -o $(SNAP_SMOKE_DIR)/resumed.snap >/dev/null
	$(GO) run ./cmd/digs-snap take -topology half-testbed-a -protocol digs -seed 9 \
		-slots 5000 -label golden -o $(SNAP_SMOKE_DIR)/straight.snap >/dev/null
	cmp $(SNAP_SMOKE_DIR)/resumed.snap $(SNAP_SMOKE_DIR)/straight.snap
	@echo snap-smoke: OK

## scale-smoke: spin up a procedurally generated 10k-node deployment on
## the sparse sharded engine and step it briefly under DiGS and Orchestra
## — catches engine bit-rot at a scale the dense matrix cannot represent.
## WirelessHART is excluded by design: its centralised manager computes
## the whole schedule up front, which is exactly the scaling limit the
## paper's distributed approach removes.
scale-smoke:
	$(GO) run ./cmd/digs-bench -scale-smoke
	@echo scale-smoke: OK

## controller-smoke: the pluggable controller layer end to end —
## race-enabled controller and registry tests, then a mini four-way
## chaos run (digs / orchestra / whart / sdn on the fig8 plan) that
## fails unless every fault reconverges — including the centralized sdn
## stack, whose recovery must come from the controller's in-band
## recollect + redistribute cycle, not local repair.
controller-smoke:
	$(GO) test -race ./internal/controller/
	$(GO) test -race -run 'TestStackRegistry|TestSpecHashGolden|TestControllerScaleShardBitIdentity' ./internal/scenario/
	$(GO) run ./cmd/digs-chaos -plan fig8 -topology testbed-a -duration 30s -require-recovery >/dev/null
	@echo controller-smoke: OK

## bench-controller: regenerate BENCH_controller.json — the controller
## stacks (sdn, adaptive) on the dense testbed and the sparse sharded
## engine: join counts after the formation window and steady-state
## slots/s.
bench-controller:
	$(GO) run ./cmd/digs-bench -bench-controller BENCH_controller.json

## bench-scale: regenerate BENCH_scale.json — the nodes x protocol x
## shards throughput matrix, including the dense-engine twin that anchors
## the sparse engine's speedup claim.
bench-scale:
	$(GO) run ./cmd/digs-bench -bench-scale BENCH_scale.json

## server-smoke: the simulation service end to end — self-host a
## digs-server, submit a small generated plant over HTTP, follow its SSE
## telemetry stream to completion, verify the result hash and the
## content-addressed store round-trip, demand a cache hit on
## resubmission, and byte-compare the server's result against a direct
## in-process run of the same spec.
server-smoke:
	$(GO) run ./cmd/digs-load -smoke

## recover-smoke: the crash-safety contract end to end — race-enabled
## journal/retry/degraded-mode tests, then the real-process harness:
## build digs-server, SIGKILL it mid-burst, restart on the same data
## directory, and fail unless every acknowledged job reaches done with
## verified result bytes (zero accepted jobs lost).
RECOVER_DIR := $(if $(TMPDIR),$(TMPDIR),/tmp)/digs-recover-smoke
recover-smoke:
	$(GO) test -race -run 'Journal|Replay|Retry|Panic|Degraded|Recover|Quarantine' ./internal/server
	rm -rf $(RECOVER_DIR) && mkdir -p $(RECOVER_DIR)
	$(GO) build -o $(RECOVER_DIR)/digs-server ./cmd/digs-server
	$(GO) run ./cmd/digs-load -crash -server-bin $(RECOVER_DIR)/digs-server
	@echo recover-smoke: OK

## gateway-smoke: the fault-tolerant front tier end to end —
## race-enabled gateway and fault-proxy tests (routing, breakers,
## replication, read-repair, SSE failover reattach), the in-process
## partition harness (blackhole one backend mid-burst, demand eviction
## within the probe budget and zero surfaced errors), and the real
## 1-gateway/3-backend harness that SIGKILLs the busiest backend
## mid-burst and fails unless every acknowledged job reaches done with
## verified result bytes.
GATEWAY_DIR := $(if $(TMPDIR),$(TMPDIR),/tmp)/digs-gateway-smoke
gateway-smoke:
	$(GO) test -race ./internal/gateway/...
	$(GO) run ./cmd/digs-load -gateway -partition
	rm -rf $(GATEWAY_DIR) && mkdir -p $(GATEWAY_DIR)
	$(GO) build -o $(GATEWAY_DIR)/digs-server ./cmd/digs-server
	$(GO) build -o $(GATEWAY_DIR)/digs-gateway ./cmd/digs-gateway
	$(GO) run ./cmd/digs-load -gateway -crash \
		-server-bin $(GATEWAY_DIR)/digs-server -gateway-bin $(GATEWAY_DIR)/digs-gateway
	@echo gateway-smoke: OK

## bench-server: regenerate BENCH_server.json — the simulation service
## under a mixed cold / warm-start / duplicate workload: sustained req/s,
## per-class submit-to-result p50/p99, warm-hit and cache-hit rates.
bench-server:
	$(GO) run ./cmd/digs-load -o BENCH_server.json

## bench-gate: re-time the gated BENCH_scale.json cells (fail when any
## regresses more than 15% in slots/s) and re-run the server load bench
## against BENCH_server.json (fail when req/s drops or a class p99 grows
## past tolerance). Kept out of `ci`: wall-clock gates belong on
## dedicated runners, not shared machines.
bench-gate:
	$(GO) run ./cmd/digs-bench -bench-gate BENCH_scale.json
	$(GO) run ./cmd/digs-load -gate BENCH_server.json

## bench-warmstart: regenerate BENCH_warmstart.json — cold vs warm-started
## chaos campaign wall-clock, with a byte-identity check on the reports.
bench-warmstart:
	$(GO) run ./cmd/digs-chaos -plan fig8 -topology testbed-a \
		-protocols digs,orchestra,whart -bench-warmstart BENCH_warmstart.json >/dev/null

## baseline: regenerate BENCH_baseline.json — sequential vs parallel
## wall-clock for reference campaigns, with a bit-identity check.
baseline:
	$(GO) run ./cmd/digs-bench -perf-baseline BENCH_baseline.json

clean:
	$(GO) clean ./...
