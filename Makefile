GO ?= go

.PHONY: ci vet build test race fuzz bench-smoke trace-smoke trace-golden baseline clean

## ci: everything the driver checks — vet, build, race-enabled tests, a
## short fuzz pass over the wire codecs, a one-shot large-scale benchmark
## smoke run, and the telemetry pipeline smoke test.
ci: vet build race fuzz bench-smoke trace-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: brief native-fuzzing passes over the frame and routing-payload
## codecs (go test allows one -fuzz pattern per package invocation).
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME) ./internal/mac
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalJoinIn -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalJoinedCallback -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzScanJSONL -fuzztime=$(FUZZTIME) ./internal/telemetry

## bench-smoke: run the heaviest benchmark once to catch bit-rot without
## paying for a full measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkFig12LargeScale -benchtime=1x .

## trace-smoke: run a short Figure 4 slice with packet-lifecycle tracing
## on, replay the trace through digs-trace, and diff the report against the
## checked-in golden — catches schema drift, nondeterminism and broken hook
## points in one pass.
TRACE_SMOKE_JSONL := $(if $(TMPDIR),$(TMPDIR),/tmp)/digs-trace-smoke.jsonl
trace-smoke:
	$(GO) run ./cmd/digs-bench -fig 4 -smoke -seed 42 -trace $(TRACE_SMOKE_JSONL) >/dev/null
	$(GO) run ./cmd/digs-trace -per-flow $(TRACE_SMOKE_JSONL) | diff -u testdata/trace_smoke_golden.txt -
	@echo trace-smoke: OK

## trace-golden: regenerate the trace-smoke golden report after an
## intentional schema or instrumentation change.
trace-golden:
	$(GO) run ./cmd/digs-bench -fig 4 -smoke -seed 42 -trace $(TRACE_SMOKE_JSONL) >/dev/null
	$(GO) run ./cmd/digs-trace -per-flow $(TRACE_SMOKE_JSONL) > testdata/trace_smoke_golden.txt

## baseline: regenerate BENCH_baseline.json — sequential vs parallel
## wall-clock for reference campaigns, with a bit-identity check.
baseline:
	$(GO) run ./cmd/digs-bench -perf-baseline BENCH_baseline.json

clean:
	$(GO) clean ./...
