GO ?= go

.PHONY: ci vet build test race bench-smoke baseline clean

## ci: everything the driver checks — vet, build, race-enabled tests, and a
## one-shot large-scale benchmark smoke run.
ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-smoke: run the heaviest benchmark once to catch bit-rot without
## paying for a full measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkFig12LargeScale -benchtime=1x .

## baseline: regenerate BENCH_baseline.json — sequential vs parallel
## wall-clock for reference campaigns, with a bit-identity check.
baseline:
	$(GO) run ./cmd/digs-bench -perf-baseline BENCH_baseline.json

clean:
	$(GO) clean ./...
